package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dspot/internal/core"
	"dspot/internal/jobs"
	"dspot/internal/obs/trace"
	"dspot/internal/registry"
)

// syncBuffer is a mutex-guarded log sink safe for concurrent handlers.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// tracedServer builds a full stateful server with tracing enabled and JSON
// logs captured, mirroring how dspot-serve wires the pieces.
func tracedServer(t *testing.T) (*httptest.Server, *trace.Recorder, *syncBuffer) {
	t.Helper()
	rec := trace.NewRecorder(trace.RecorderOptions{})
	tracer := trace.NewTracer(rec)
	reg, err := registry.Open(registry.Options{
		StreamFit: core.FitOptions{
			Workers: 1, DisableGrowth: true, MaxShocks: 2,
		},
		Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	logs := &syncBuffer{}
	logger := trace.WrapLogger(slog.New(slog.NewJSONHandler(logs, nil)))
	engine := jobs.New(jobs.Options{
		Workers: 2, Logger: logger, Tracer: tracer,
	})
	t.Cleanup(engine.Close)
	srv := httptest.NewServer((&Server{
		Workers:  1,
		Logger:   logger,
		Registry: reg,
		Jobs:     engine,
		Tracer:   tracer,
	}).Handler())
	t.Cleanup(srv.Close)
	return srv, rec, logs
}

// fetchTrace polls /debug/traces/{id} until the named spans all appear
// (spans can land shortly after the job turns terminal, since the run span
// ends after the engine's bookkeeping).
func fetchTrace(t *testing.T, base, traceID string, want ...string) trace.TraceData {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var td trace.TraceData
	for {
		resp := getJSON(t, base+"/debug/traces/"+traceID, &td)
		if resp.StatusCode == http.StatusOK {
			names := make(map[string]bool, len(td.Spans))
			for _, sp := range td.Spans {
				names[sp.Name] = true
			}
			missing := false
			for _, w := range want {
				if !names[w] {
					missing = true
				}
			}
			if !missing {
				return td
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never contained %v (got %+v)", traceID, want, td)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func spanByName(td trace.TraceData, name string) *trace.SpanData {
	for i := range td.Spans {
		if td.Spans[i].Name == name {
			return &td.Spans[i]
		}
	}
	return nil
}

func attrOf(sp *trace.SpanData, key string) (any, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// TestJobFitTraceEndToEnd is the acceptance path: one POST /v1/jobs/fit
// produces one trace holding the HTTP span, the job queue-wait and run
// spans, and the fit-stage spans with LM-iteration attributes — and the
// same trace id appears on the request and job log lines.
func TestJobFitTraceEndToEnd(t *testing.T) {
	srv, _, logs := tracedServer(t)

	csv := smallTensorCSV(t)
	req, err := http.NewRequest(http.MethodPost,
		srv.URL+"/v1/jobs/fit?global_only=1&no_growth=1", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	var acc struct {
		JobID string `json:"job_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("jobs/fit status %d", resp.StatusCode)
	}
	if len(traceID) != 32 {
		t.Fatalf("X-Trace-Id %q, want 32 hex chars", traceID)
	}
	if snap := waitJob(t, srv.URL, acc.JobID); snap.State != jobs.StateDone {
		t.Fatalf("job state %s (%s)", snap.State, snap.Error)
	}

	td := fetchTrace(t, srv.URL, traceID,
		"http.request", "job.wait", "job.run", "fit.global", "fit.keyword")

	// Parent links: job spans under the HTTP span, fit stages under run.
	httpSpan := spanByName(td, "http.request")
	runSpan := spanByName(td, "job.run")
	waitSpan := spanByName(td, "job.wait")
	global := spanByName(td, "fit.global")
	keyword := spanByName(td, "fit.keyword")
	if waitSpan.ParentSpanID != httpSpan.SpanID || runSpan.ParentSpanID != httpSpan.SpanID {
		t.Errorf("job spans not parented to the HTTP span: wait→%s run→%s http=%s",
			waitSpan.ParentSpanID, runSpan.ParentSpanID, httpSpan.SpanID)
	}
	if global.ParentSpanID != runSpan.SpanID || keyword.ParentSpanID != runSpan.SpanID {
		t.Errorf("fit spans not parented to the run span: global→%s keyword→%s run=%s",
			global.ParentSpanID, keyword.ParentSpanID, runSpan.SpanID)
	}
	for _, sp := range td.Spans {
		if sp.TraceID != traceID {
			t.Errorf("span %s trace %s, want %s", sp.Name, sp.TraceID, traceID)
		}
	}
	if v, ok := attrOf(keyword, "lm_iterations"); !ok {
		t.Error("fit.keyword span missing lm_iterations attr")
	} else if f, isNum := v.(float64); isNum && f < 1 { // JSON numbers decode as float64
		t.Errorf("fit.keyword lm_iterations %v, want >= 1", v)
	}
	if v, ok := attrOf(keyword, "lm_stalls"); !ok {
		t.Error("fit.keyword span missing lm_stalls attr")
	} else if f, isNum := v.(float64); isNum && f < 0 {
		t.Errorf("fit.keyword lm_stalls %v, want >= 0", v)
	}
	if v, ok := attrOf(runSpan, "state"); !ok || v != "done" {
		t.Errorf("job.run state attr %v, want done", v)
	}
	if v, ok := attrOf(httpSpan, "route"); !ok || v != "POST /v1/jobs/fit" {
		t.Errorf("http.request route attr %v", v)
	}

	// Log correlation: the request line and the job lifecycle lines carry
	// the same trace id.
	out := logs.String()
	var requestLine, finishedLine bool
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, traceID) {
			continue
		}
		if strings.Contains(line, `"msg":"request"`) &&
			strings.Contains(line, `"route":"POST /v1/jobs/fit"`) {
			requestLine = true
		}
		if strings.Contains(line, `"msg":"job finished"`) {
			finishedLine = true
		}
	}
	if !requestLine {
		t.Errorf("no request log line carries trace_id %s:\n%s", traceID, out)
	}
	if !finishedLine {
		t.Errorf("no job-finished log line carries trace_id %s:\n%s", traceID, out)
	}
}

// TestMiddlewareTraceConcurrent hammers traced endpoints from many
// goroutines; run under -race it pins the span/recorder paths as safe for
// parallel requests with interleaved spans.
func TestMiddlewareTraceConcurrent(t *testing.T) {
	srv, rec, _ := tracedServer(t)
	const clients = 8
	const perClient = 10
	var wg sync.WaitGroup
	ids := make([]string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := `{"values":[1,2,3]}`
				resp, err := http.Post(
					fmt.Sprintf("%s/v1/streams/s%d/append", srv.URL, c),
					"application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				ids[c*perClient+i] = resp.Header.Get("X-Trace-Id")
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if len(id) != 32 {
			t.Fatalf("bad X-Trace-Id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %s across requests", id)
		}
		seen[id] = true
	}
	if got := rec.Len(); got < clients*perClient {
		t.Errorf("recorder holds %d traces, want >= %d", got, clients*perClient)
	}
	// Every trace must contain both the HTTP span and its stream.append
	// child.
	var td trace.TraceData
	if resp := getJSON(t, srv.URL+"/debug/traces/"+ids[0], &td); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace get status %d", resp.StatusCode)
	}
	httpSpan := spanByName(td, "http.request")
	appendSpan := spanByName(td, "stream.append")
	if httpSpan == nil || appendSpan == nil {
		t.Fatalf("trace missing spans: %+v", td)
	}
	if appendSpan.ParentSpanID != httpSpan.SpanID {
		t.Errorf("stream.append parent %s, want %s", appendSpan.ParentSpanID, httpSpan.SpanID)
	}
}

// TestMiddlewareTraceparentRoundTrip checks W3C propagation: an inbound
// traceparent continues that trace (the HTTP span becomes a child of the
// remote span), and a malformed one starts a fresh trace.
func TestMiddlewareTraceparentRoundTrip(t *testing.T) {
	srv, _, _ := tracedServer(t)

	const remoteTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const remoteSpan = "00f067aa0ba902b7"
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+remoteTrace+"-"+remoteSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != remoteTrace {
		t.Fatalf("X-Trace-Id %q, want the inbound trace id %q", got, remoteTrace)
	}
	td := fetchTrace(t, srv.URL, remoteTrace, "http.request")
	if sp := spanByName(td, "http.request"); sp.ParentSpanID != remoteSpan {
		t.Errorf("http span parent %q, want the inbound parent id %q",
			sp.ParentSpanID, remoteSpan)
	}

	// Malformed header: best-effort extraction must fall back to a new
	// trace, not fail the request.
	req2, _ := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	req2.Header.Set("traceparent", "00-zznothex-bogus-01")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d with malformed traceparent", resp2.StatusCode)
	}
	if id := resp2.Header.Get("X-Trace-Id"); len(id) != 32 || id == remoteTrace {
		t.Fatalf("malformed traceparent produced X-Trace-Id %q", id)
	}
}

// TestTracingDisabledAddsNoAllocs pins the disabled-tracing contract at the
// service layer: with a nil tracer the fit progress chain is exactly the
// metrics hook that shipped before tracing existed — the bridge adds no
// wrapper and no per-event allocations.
func TestTracingDisabledAddsNoAllocs(t *testing.T) {
	var calls int
	base := core.ProgressFunc(func(core.FitEvent) { calls++ })
	hook := chainProgress(base, fitSpanHook(nil, trace.SpanContext{}, "dspot"))
	ev := core.FitEvent{Stage: core.StageKeyword, LMIters: 3}
	if allocs := testing.AllocsPerRun(1000, func() { hook(ev) }); allocs != 0 {
		t.Fatalf("disabled-tracing progress hook allocates %.1f per event, want 0", allocs)
	}
	if calls == 0 {
		t.Fatal("chained hook never reached the metrics hook")
	}
	// And a disabled tracer must not even wrap: the chain returns the
	// original hook untouched.
	if got := fitSpanHook(nil, trace.SpanContext{}, "dspot"); got != nil {
		t.Fatal("fitSpanHook on a nil tracer must return nil")
	}
}
