package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dspot/internal/jobs"
	"dspot/internal/registry"
)

// probeJSON decodes loosely (any values): unready bodies carry a "reasons"
// array alongside the scalar fields.
func probeJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("readyz body not JSON: %v", err)
	}
	return resp, body
}

func TestReadyzDefaultReady(t *testing.T) {
	srv := testServer(t)
	resp, body := probeJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz = %d %v, want 200 ready", resp.StatusCode, body)
	}
}

func TestReadyzGateReportsReason(t *testing.T) {
	srv := httptest.NewServer((&Server{
		Ready: func() error { return errors.New("registry loading") },
	}).Handler())
	defer srv.Close()
	resp, body := probeJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status = %d, want 503", resp.StatusCode)
	}
	if body["status"] != "unavailable" || body["reason"] != "registry loading" {
		t.Fatalf("readyz body = %v", body)
	}
	// Liveness stays green the whole time: restarting a booting process
	// because its *readiness* gate is closed would be a crash loop.
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d while unready, want 200", resp2.StatusCode)
	}
}

func TestReadyzSaturatedQueue(t *testing.T) {
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	// Negative grace = instantaneous saturation reporting, so the test need
	// not wait out the anti-flap window.
	engine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 1, SaturationGrace: -1})
	defer engine.Close()
	defer close(release)
	srv := httptest.NewServer((&Server{Registry: reg, Jobs: engine}).Handler())
	defer srv.Close()

	resp, body := probeJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idle readyz = %d %v, want 200", resp.StatusCode, body)
	}

	// One job occupies the sole worker, one fills the depth-1 queue.
	blocker := func(ctx context.Context) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	if _, err := engine.Submit("block", blocker); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the blocking job")
	}
	if _, err := engine.Submit("fill", blocker); err != nil {
		t.Fatal(err)
	}
	if !engine.Saturated() {
		t.Fatal("queue not saturated after filling it")
	}
	resp, body = probeJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable ||
		body["reason"] != "job queue saturated" {
		t.Fatalf("saturated readyz = %d %v, want 503 with reason", resp.StatusCode, body)
	}
}

// TestReadyzToleratesMomentarySaturation is the anti-flap half of the
// saturation gate: a queue that just filled must NOT fail readiness until
// it has stayed full for the whole grace window — a momentary burst only
// bounces the overflowing Submit (429-style, with Retry-After), it does not
// pull read-only endpoints out of load-balancer rotation.
func TestReadyzToleratesMomentarySaturation(t *testing.T) {
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	grace := 200 * time.Millisecond
	engine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 1, SaturationGrace: grace})
	defer engine.Close()
	defer close(release)
	srv := httptest.NewServer((&Server{Registry: reg, Jobs: engine}).Handler())
	defer srv.Close()

	blocker := func(ctx context.Context) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	if _, err := engine.Submit("block", blocker); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the blocking job")
	}
	if _, err := engine.Submit("fill", blocker); err != nil {
		t.Fatal(err)
	}
	// Momentarily full: readiness must hold.
	resp, body := probeJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("momentarily saturated readyz = %d %v, want 200", resp.StatusCode, body)
	}
	// Sustained full: past the grace the instance really is backed up.
	time.Sleep(2 * grace)
	resp, body = probeJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable ||
		body["reason"] != "job queue saturated" {
		t.Fatalf("sustained saturated readyz = %d %v, want 503", resp.StatusCode, body)
	}
}

// TestFitRejectsDegenerateTensor covers the numerical boundary: a tensor
// that parses as CSV but carries Inf must bounce with 400 (bad input),
// never reach the fitters, and never read as 422 (fit failed).
func TestFitRejectsDegenerateTensor(t *testing.T) {
	srv := testServer(t)
	csv := "keyword,location,tick,count\nk,a,0,1\nk,a,1,Inf\nk,a,2,3\n"
	resp, body := post(t, srv.URL+"/v1/fit", "text/csv", csv)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("Inf tensor fit = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "invalid tensor") {
		t.Fatalf("error body does not name the cause: %s", body)
	}
}

func TestJobFitRejectsDegenerateTensor(t *testing.T) {
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	engine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 1})
	defer engine.Close()
	srv := httptest.NewServer((&Server{Registry: reg, Jobs: engine}).Handler())
	defer srv.Close()
	csv := "keyword,location,tick,count\nk,a,0,1\nk,a,1,Inf\n"
	resp, body := post(t, srv.URL+"/v1/jobs/fit", "text/csv", csv)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("Inf tensor job fit = %d: %s", resp.StatusCode, body)
	}
	if snaps := engine.List(); len(snaps) != 0 {
		t.Fatalf("degenerate tensor consumed a queue slot: %+v", snaps)
	}
}
