package service

import (
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"dspot/internal/admit"
	"dspot/internal/engine"
	"dspot/internal/obs"
	"dspot/internal/obs/trace"
)

// Metrics bundles the service's instrumentation over one obs.Registry:
// per-endpoint request counts, latency histograms, an in-flight gauge,
// response sizes, per-engine fit counts, and fit-pipeline stage metrics
// fed from FitTrace reports. Expose the registry at GET /metrics via
// Server.Handler.
type Metrics struct {
	Registry *obs.Registry

	requests  *obs.CounterVec   // http_requests_total{path,method,code}
	latency   *obs.HistogramVec // http_request_seconds{path}
	inflight  *obs.Gauge        // http_inflight_requests
	respBytes *obs.CounterVec   // http_response_bytes_total{path}

	fits           *obs.CounterVec   // fits_total{engine}
	fitStage       *obs.HistogramVec // fit_stage_seconds{stage}
	fitLMIters     *obs.Counter      // fit_lm_iterations_total
	shocksTried    *obs.Counter      // fit_shocks_tried_total
	shocksAccepted *obs.Counter      // fit_shocks_accepted_total
	fitKeywords    *obs.Counter      // fit_keywords_total

	sheds        *obs.CounterVec // http_sheds_total{reason}
	breakerState *obs.GaugeVec   // engine_breaker_state{engine}
}

// NewMetrics returns service metrics registered on a fresh registry.
func NewMetrics() *Metrics {
	return NewMetricsOn(obs.NewRegistry())
}

// NewMetricsOn registers the service metrics on reg.
func NewMetricsOn(reg *obs.Registry) *Metrics {
	return &Metrics{
		Registry: reg,
		requests: reg.CounterVec("http_requests_total",
			"HTTP requests served, by endpoint, method and status code.",
			"path", "method", "code"),
		latency: reg.HistogramVec("http_request_seconds",
			"HTTP request latency in seconds, by endpoint.",
			obs.DefBuckets(), "path"),
		inflight: reg.Gauge("http_inflight_requests",
			"Requests currently being served."),
		respBytes: reg.CounterVec("http_response_bytes_total",
			"Response body bytes written, by endpoint.", "path"),
		fits: reg.CounterVec("fits_total",
			"Successful model fits, by the engine that produced the model.",
			"engine"),
		fitStage: reg.HistogramVec("fit_stage_seconds",
			"Wall-clock per fit pipeline stage (worker time for inner stages).",
			obs.DefBuckets(), "stage"),
		fitLMIters: reg.Counter("fit_lm_iterations_total",
			"Levenberg-Marquardt iterations spent fitting."),
		shocksTried: reg.Counter("fit_shocks_tried_total",
			"Shock candidates evaluated by the MDL gate."),
		shocksAccepted: reg.Counter("fit_shocks_accepted_total",
			"Shock candidates accepted by the MDL gate."),
		fitKeywords: reg.Counter("fit_keywords_total",
			"Keyword sequences fitted."),
		sheds: reg.CounterVec("http_sheds_total",
			"Requests rejected by admission control, by reason: "+
				"\"breaker_open\", \"over_budget\", \"queue_full\", \"append_lag\".",
			"reason"),
		breakerState: reg.GaugeVec("engine_breaker_state",
			"Per-engine circuit breaker position: 0 closed, 1 half-open, 2 open.",
			"engine"),
	}
}

// ObserveShed counts one admission-control rejection under its reason.
func (m *Metrics) ObserveShed(reason string) {
	if m == nil {
		return
	}
	m.sheds.With(reason).Inc()
}

// SetBreakerState exports one engine breaker's position (0 closed,
// 1 half-open, 2 open). Wired as the BreakerSet's transition observer by
// NewBreakerSet.
func (m *Metrics) SetBreakerState(engineName string, s admit.State) {
	if m == nil {
		return
	}
	m.breakerState.With(engineName).Set(float64(s))
}

// ObserveFit counts one successful fit under the engine that produced the
// model (for auto fits: the winner).
func (m *Metrics) ObserveFit(engineName string) {
	if m == nil {
		return
	}
	if engineName == "" {
		engineName = engine.Default
	}
	m.fits.With(engineName).Inc()
}

// ObserveFitReport folds one fit run's report into the fit metrics.
func (m *Metrics) ObserveFitReport(rep *engine.FitReport) {
	if m == nil || rep == nil {
		return
	}
	for stage, d := range rep.StageDurations {
		m.fitStage.With(stage).Observe(d.Seconds())
	}
	m.fitLMIters.Add(float64(rep.LMIterations))
	m.shocksTried.Add(float64(rep.ShocksTried))
	m.shocksAccepted.Add(float64(rep.ShocksAccepted))
	m.fitKeywords.Add(float64(rep.Keywords))
}

// statusRecorder captures the status code and bytes written by a handler.
// It deliberately re-exposes the optional ResponseWriter capabilities the
// embedded-interface trick would otherwise hide: Flush (streaming handlers
// stall without it), ReadFrom (sendfile-style copies keep their fast path
// while still being counted), and Unwrap (http.ResponseController finds the
// rest).
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) ReadFrom(src io.Reader) (int64, error) {
	// io.Copy picks the underlying writer's ReaderFrom when it has one, so
	// the copy stays on the fast path and the bytes still get counted.
	n, err := io.Copy(r.ResponseWriter, src)
	r.bytes += n
	return n, err
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps next with request metrics, tracing and optional request
// logging. path is the route label (the registered pattern, not the raw
// URL, so label cardinality stays bounded).
func instrument(path string, m *Metrics, log *slog.Logger, tr *trace.Tracer, next http.Handler) http.Handler {
	if m == nil && log == nil && tr == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if m != nil {
			m.inflight.Inc()
			defer m.inflight.Dec()
		}
		var span *trace.Span
		traceID := ""
		if tr != nil {
			ctx := r.Context()
			// An inbound traceparent (upstream proxy, another shard) makes
			// this request's span a child in the caller's trace.
			if remote := trace.Extract(r.Header); remote.Valid() {
				ctx = trace.ContextWithRemote(ctx, remote)
			}
			ctx, span = tr.Start(ctx, "http.request",
				trace.String("route", path),
				trace.String("method", r.Method),
				trace.String("path", r.URL.Path))
			r = r.WithContext(ctx)
			traceID = span.Context().TraceID.String()
			// Echo the id so clients (and the CI smoke test) can pull the
			// trace from /debug/traces/{id} without parsing logs.
			w.Header().Set("X-Trace-Id", traceID)
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		span.SetAttr("status", rec.code)
		span.SetAttr("bytes", rec.bytes)
		span.End()
		if m != nil {
			m.requests.With(path, r.Method, strconv.Itoa(rec.code)).Inc()
			m.latency.With(path).Observe(elapsed.Seconds())
			m.respBytes.With(path).Add(float64(rec.bytes))
		}
		if log != nil {
			args := []any{
				"method", r.Method, "route", path, "path", r.URL.Path,
				"status", rec.code, "bytes", rec.bytes,
				"duration", elapsed, "remote", r.RemoteAddr,
			}
			if traceID != "" {
				args = append(args, "trace_id", traceID)
			}
			log.Info("request", args...)
		}
	})
}
