package service

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"dspot/internal/core"
	"dspot/internal/obs"
)

// Metrics bundles the service's instrumentation over one obs.Registry:
// per-endpoint request counts, latency histograms, an in-flight gauge,
// response sizes, and fit-pipeline stage metrics fed from core.FitTrace
// reports. Expose the registry at GET /metrics via Server.Handler.
type Metrics struct {
	Registry *obs.Registry

	requests  *obs.CounterVec   // http_requests_total{path,method,code}
	latency   *obs.HistogramVec // http_request_seconds{path}
	inflight  *obs.Gauge        // http_inflight_requests
	respBytes *obs.CounterVec   // http_response_bytes_total{path}

	fitStage       *obs.HistogramVec // fit_stage_seconds{stage}
	fitLMIters     *obs.Counter      // fit_lm_iterations_total
	shocksTried    *obs.Counter      // fit_shocks_tried_total
	shocksAccepted *obs.Counter      // fit_shocks_accepted_total
	fitKeywords    *obs.Counter      // fit_keywords_total
}

// NewMetrics returns service metrics registered on a fresh registry.
func NewMetrics() *Metrics {
	return NewMetricsOn(obs.NewRegistry())
}

// NewMetricsOn registers the service metrics on reg.
func NewMetricsOn(reg *obs.Registry) *Metrics {
	return &Metrics{
		Registry: reg,
		requests: reg.CounterVec("http_requests_total",
			"HTTP requests served, by endpoint, method and status code.",
			"path", "method", "code"),
		latency: reg.HistogramVec("http_request_seconds",
			"HTTP request latency in seconds, by endpoint.",
			obs.DefBuckets(), "path"),
		inflight: reg.Gauge("http_inflight_requests",
			"Requests currently being served."),
		respBytes: reg.CounterVec("http_response_bytes_total",
			"Response body bytes written, by endpoint.", "path"),
		fitStage: reg.HistogramVec("fit_stage_seconds",
			"Wall-clock per fit pipeline stage (worker time for inner stages).",
			obs.DefBuckets(), "stage"),
		fitLMIters: reg.Counter("fit_lm_iterations_total",
			"Levenberg-Marquardt iterations spent fitting."),
		shocksTried: reg.Counter("fit_shocks_tried_total",
			"Shock candidates evaluated by the MDL gate."),
		shocksAccepted: reg.Counter("fit_shocks_accepted_total",
			"Shock candidates accepted by the MDL gate."),
		fitKeywords: reg.Counter("fit_keywords_total",
			"Keyword sequences fitted."),
	}
}

// ObserveFitReport folds one fit run's report into the fit metrics.
func (m *Metrics) ObserveFitReport(rep *core.FitReport) {
	if m == nil || rep == nil {
		return
	}
	for stage, d := range rep.StageDurations {
		m.fitStage.With(stage).Observe(d.Seconds())
	}
	m.fitLMIters.Add(float64(rep.LMIterations))
	m.shocksTried.Add(float64(rep.ShocksTried))
	m.shocksAccepted.Add(float64(rep.ShocksAccepted))
	m.fitKeywords.Add(float64(rep.Keywords))
}

// statusRecorder captures the status code and bytes written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// instrument wraps next with request metrics and optional request logging.
// path is the route label (the registered pattern, not the raw URL, so
// label cardinality stays bounded).
func instrument(path string, m *Metrics, log *slog.Logger, next http.Handler) http.Handler {
	if m == nil && log == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if m != nil {
			m.inflight.Inc()
			defer m.inflight.Dec()
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		if m != nil {
			m.requests.With(path, r.Method, strconv.Itoa(rec.code)).Inc()
			m.latency.With(path).Observe(elapsed.Seconds())
			m.respBytes.With(path).Add(float64(rec.bytes))
		}
		if log != nil {
			log.Info("request",
				"method", r.Method, "path", r.URL.Path, "status", rec.code,
				"bytes", rec.bytes, "duration", elapsed, "remote", r.RemoteAddr)
		}
	})
}
