package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dspot/internal/core"
	"dspot/internal/jobs"
	"dspot/internal/registry"
)

// statefulServer builds a server with a registry (persisted under dir when
// non-empty) and a jobs engine, plus the pieces for restart tests.
func statefulServer(t *testing.T, dir string, jopts jobs.Options) (*httptest.Server, *registry.Registry, *jobs.Engine) {
	t.Helper()
	reg, err := registry.Open(registry.Options{
		DataDir: dir,
		StreamFit: core.FitOptions{
			Workers: 1, DisableGrowth: true, MaxShocks: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if jopts.Workers == 0 {
		jopts.Workers = 2
	}
	engine := jobs.New(jopts)
	t.Cleanup(engine.Close)
	srv := httptest.NewServer((&Server{
		Workers:  1,
		Registry: reg,
		Jobs:     engine,
	}).Handler())
	t.Cleanup(srv.Close)
	return srv, reg, engine
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("unmarshal %s: %v: %s", url, err, data)
		}
	}
	return resp
}

func doRequest(t *testing.T, method, url string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// submitFit posts a fit job and returns (jobID, modelID).
func submitFit(t *testing.T, base, csv, query string) (string, string) {
	t.Helper()
	resp, body := post(t, base+"/v1/jobs/fit?global_only=1&no_growth=1"+query,
		"text/csv", csv)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("jobs/fit status %d: %s", resp.StatusCode, body)
	}
	var acc struct {
		JobID   string `json:"job_id"`
		ModelID string `json:"model_id"`
	}
	if err := json.Unmarshal([]byte(body), &acc); err != nil {
		t.Fatalf("unmarshal accept body: %v: %s", err, body)
	}
	if acc.JobID == "" || acc.ModelID == "" {
		t.Fatalf("accept body incomplete: %s", body)
	}
	return acc.JobID, acc.ModelID
}

// waitJob polls the job endpoint until the job is terminal.
func waitJob(t *testing.T, base, id string) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var snap jobs.Snapshot
		resp := getJSON(t, base+"/v1/jobs/"+id, &snap)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job get status %d", resp.StatusCode)
		}
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.Snapshot{}
}

func TestJobFitLifecycleOverHTTP(t *testing.T) {
	srv, _, _ := statefulServer(t, "", jobs.Options{})
	csv := smallTensorCSV(t)

	jobID, modelID := submitFit(t, srv.URL, csv, "&model_id=grammy-v1")
	if modelID != "grammy-v1" {
		t.Fatalf("model id = %q", modelID)
	}
	snap := waitJob(t, srv.URL, jobID)
	if snap.State != jobs.StateDone {
		t.Fatalf("job = %+v", snap)
	}
	// Result round-trips through the snapshot as a JSON object.
	res, ok := snap.Result.(map[string]any)
	if !ok || res["model_id"] != "grammy-v1" {
		t.Fatalf("job result = %#v", snap.Result)
	}

	// Model endpoints serve the stored model.
	var list struct {
		Models []registry.Info `json:"models"`
	}
	if resp := getJSON(t, srv.URL+"/v1/models", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("models list status %d", resp.StatusCode)
	}
	if len(list.Models) != 1 || list.Models[0].ID != "grammy-v1" {
		t.Fatalf("models = %+v", list.Models)
	}
	var fc ForecastJSON
	if resp := getJSON(t, srv.URL+"/v1/models/grammy-v1/forecast?horizon=8", &fc); resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status %d", resp.StatusCode)
	}
	if fc.Keyword != "grammy" || len(fc.Forecast) != 8 {
		t.Fatalf("forecast = %+v", fc)
	}
	var ev struct {
		Events []EventJSON `json:"events"`
	}
	if resp := getJSON(t, srv.URL+"/v1/models/grammy-v1/events", &ev); resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}

	// Unknown keyword on a stored model is a 400, not index 0.
	resp, _ := doRequest(t, http.MethodGet,
		srv.URL+"/v1/models/grammy-v1/forecast?keyword=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown keyword status %d", resp.StatusCode)
	}

	// Cancel after completion conflicts; delete removes the model.
	if resp, _ := doRequest(t, http.MethodDelete, srv.URL+"/v1/jobs/"+jobID); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel terminal job status %d", resp.StatusCode)
	}
	if resp, _ := doRequest(t, http.MethodDelete, srv.URL+"/v1/models/grammy-v1"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("model delete status %d", resp.StatusCode)
	}
	if resp, _ := doRequest(t, http.MethodGet, srv.URL+"/v1/models/grammy-v1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted model status %d", resp.StatusCode)
	}
	if resp, _ := doRequest(t, http.MethodGet, srv.URL+"/v1/jobs/no-such-job"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", resp.StatusCode)
	}
}

func TestJobFitValidation(t *testing.T) {
	srv, _, _ := statefulServer(t, "", jobs.Options{})
	if resp, body := post(t, srv.URL+"/v1/jobs/fit", "text/csv", "not,a\ntensor"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tensor status %d: %s", resp.StatusCode, body)
	}
	if resp, body := post(t, srv.URL+"/v1/jobs/fit?model_id=.hidden", "text/csv",
		smallTensorCSV(t)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad model id status %d: %s", resp.StatusCode, body)
	}
}

func TestJobFitQueueFull(t *testing.T) {
	srv, _, engine := statefulServer(t, "", jobs.Options{Workers: 1, QueueDepth: 1})
	// Occupy the worker and fill the queue outside HTTP. Waiting for the
	// blocker to start matters: until the worker dequeues it, a queue slot
	// can still free up under the HTTP request.
	block := make(chan struct{})
	started := make(chan struct{})
	defer close(block)
	wait := func(ctx context.Context) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}
	if _, err := engine.Submit("blocker", func(ctx context.Context) (any, error) {
		close(started)
		return wait(ctx)
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := engine.Submit("filler", wait)
		if errors.Is(err, jobs.ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
	resp, body := post(t, srv.URL+"/v1/jobs/fit", "text/csv", smallTensorCSV(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full-queue status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// The rejection is structured: reason, queue depth and a retry hint, not
	// just an error string.
	sr := shedBody(t, body)
	if sr.Reason != ShedQueueFull || sr.Error == "" {
		t.Fatalf("queue-full body %+v, want reason %q", sr, ShedQueueFull)
	}
	if sr.QueueDepth != 1 || sr.QueueCap != 1 || sr.RetryAfterSeconds < 1 {
		t.Fatalf("queue-full body %+v, want depth/cap 1/1 and a retry hint", sr)
	}
}

// TestRestartDurabilityOverHTTP is the acceptance path: fit through a job,
// bring up a fresh server over the same data dir, and require the identical
// forecast.
func TestRestartDurabilityOverHTTP(t *testing.T) {
	dir := t.TempDir()
	srv1, _, _ := statefulServer(t, dir, jobs.Options{})
	jobID, modelID := submitFit(t, srv1.URL, smallTensorCSV(t), "")
	if snap := waitJob(t, srv1.URL, jobID); snap.State != jobs.StateDone {
		t.Fatalf("job = %+v", snap)
	}
	var before ForecastJSON
	if resp := getJSON(t, srv1.URL+"/v1/models/"+modelID+"/forecast?horizon=26", &before); resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status %d", resp.StatusCode)
	}
	srv1.Close()

	srv2, _, _ := statefulServer(t, dir, jobs.Options{})
	var after ForecastJSON
	if resp := getJSON(t, srv2.URL+"/v1/models/"+modelID+"/forecast?horizon=26", &after); resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast after restart status %d", resp.StatusCode)
	}
	if len(before.Forecast) != len(after.Forecast) {
		t.Fatalf("forecast lengths differ: %d vs %d", len(before.Forecast), len(after.Forecast))
	}
	for i := range before.Forecast {
		if before.Forecast[i] != after.Forecast[i] {
			t.Fatalf("forecast[%d] changed across restart: %g vs %g",
				i, before.Forecast[i], after.Forecast[i])
		}
	}
}

// streamBody renders n ticks of a positive weekly-ish cycle, with every
// missingEvery-th tick null.
func streamBody(n, offset, missingEvery int) string {
	vals := make([]string, n)
	for i := range vals {
		t := offset + i
		if missingEvery > 0 && t%missingEvery == 0 {
			vals[i] = "null"
			continue
		}
		v := 20 + 0.1*float64(t) + 8*math.Sin(2*math.Pi*float64(t)/13)
		vals[i] = fmt.Sprintf("%.4f", v)
	}
	return `{"values":[` + strings.Join(vals, ",") + `]}`
}

func TestStreamAppendOverHTTP(t *testing.T) {
	dir := t.TempDir()
	srv, _, _ := statefulServer(t, dir, jobs.Options{})

	// Under 8 observed ticks nothing fits: forecast conflicts. (The first
	// fit triggers on observation count, not the refit cadence.)
	resp, body := post(t, srv.URL+"/v1/streams/s1/append?refit_every=40",
		"application/json", streamBody(5, 0, 7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, body)
	}
	var status registry.StreamStatus
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	if status.Len != 5 || status.Ready {
		t.Fatalf("status = %+v", status)
	}
	if resp, _ := doRequest(t, http.MethodGet, srv.URL+"/v1/streams/s1/forecast"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("unfitted forecast status %d", resp.StatusCode)
	}

	// Enough observations fit a model; forecasts flow.
	resp, body = post(t, srv.URL+"/v1/streams/s1/append",
		"application/json", streamBody(45, 5, 7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	if status.Len != 50 || !status.Ready || status.Refits < 1 {
		t.Fatalf("status after refit = %+v", status)
	}
	var fc struct {
		Forecast []float64 `json:"forecast"`
	}
	if resp := getJSON(t, srv.URL+"/v1/streams/s1/forecast?horizon=12", &fc); resp.StatusCode != http.StatusOK {
		t.Fatalf("stream forecast status %d", resp.StatusCode)
	}
	if len(fc.Forecast) != 12 {
		t.Fatalf("forecast length %d", len(fc.Forecast))
	}

	// The stream survives a restart over the same data dir.
	srv.Close()
	srv2, _, _ := statefulServer(t, dir, jobs.Options{})
	var list struct {
		Streams []registry.StreamStatus `json:"streams"`
	}
	if resp := getJSON(t, srv2.URL+"/v1/streams", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("streams list status %d", resp.StatusCode)
	}
	if len(list.Streams) != 1 || list.Streams[0].Len != 50 || !list.Streams[0].Ready {
		t.Fatalf("streams after restart = %+v", list.Streams)
	}
	if resp, _ := doRequest(t, http.MethodGet, srv2.URL+"/v1/streams/s1/forecast"); resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast after restart status %d", resp.StatusCode)
	}
	if resp, _ := doRequest(t, http.MethodDelete, srv2.URL+"/v1/streams/s1"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("stream delete status %d", resp.StatusCode)
	}
	if resp, _ := doRequest(t, http.MethodGet, srv2.URL+"/v1/streams/s1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted stream status %d", resp.StatusCode)
	}
}

// TestStreamIncrementalOverHTTP drives the incremental maintenance surface
// end to end: mode selection on append, the mode/debt fields in the status
// JSON, and the on-demand consolidation endpoint.
func TestStreamIncrementalOverHTTP(t *testing.T) {
	srv, _, _ := statefulServer(t, "", jobs.Options{})

	resp, body := post(t, srv.URL+"/v1/streams/s1/append?refit_every=40&mode=incremental",
		"application/json", streamBody(50, 0, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, body)
	}
	var status registry.StreamStatus
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	if status.Mode != "incremental" || status.RefitEvery != 40 || !status.Ready {
		t.Fatalf("status = %+v, want a fitted incremental stream at cadence 40", status)
	}

	// Post-fit appends run on the incremental path and accrue refit debt.
	resp, body = post(t, srv.URL+"/v1/streams/s1/append",
		"application/json", streamBody(30, 50, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	if status.Debt <= 0 || status.DebtLimit <= 0 {
		t.Fatalf("status = %+v, want pending debt below a positive limit", status)
	}

	// Forced consolidation clears the debt.
	resp, body = post(t, srv.URL+"/v1/streams/s1/refit", "application/json", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refit status %d: %s", resp.StatusCode, body)
	}
	var after registry.StreamStatus // fresh: debt is omitempty, 0 would keep the stale value
	if err := json.Unmarshal([]byte(body), &after); err != nil {
		t.Fatal(err)
	}
	if !after.Refitted || after.Debt != 0 {
		t.Fatalf("refit status = %+v, want refitted with debt 0", after)
	}
	if resp, body := post(t, srv.URL+"/v1/streams/ghost/refit", "application/json", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream refit status %d: %s", resp.StatusCode, body)
	}
}

func TestStreamAppendValidation(t *testing.T) {
	srv, _, _ := statefulServer(t, "", jobs.Options{})
	cases := []struct {
		name, url, body string
	}{
		{"empty values", "/v1/streams/s1/append", `{"values":[]}`},
		{"negative value", "/v1/streams/s1/append", `{"values":[1,-2]}`},
		{"bad json", "/v1/streams/s1/append", `{"values":`},
		{"bad refit_every", "/v1/streams/s1/append?refit_every=zero", `{"values":[1]}`},
		{"bad mode", "/v1/streams/s1/append?mode=turbo", `{"values":[1]}`},
		{"bad id", "/v1/streams/.dot/append", `{"values":[1]}`},
	}
	for _, tc := range cases {
		resp, body := post(t, srv.URL+tc.url, "application/json", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", tc.name, resp.StatusCode, body)
		}
	}
}

// TestConcurrentStatefulTraffic hammers one server with concurrent job
// submissions, stream appends, cancellations, and reads — the -race
// acceptance scenario.
func TestConcurrentStatefulTraffic(t *testing.T) {
	srv, _, _ := statefulServer(t, t.TempDir(),
		jobs.Options{Workers: 2, QueueDepth: 64})
	csv := smallTensorCSV(t)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var jobIDs []string

	// Job submitters (with interleaved cancellations).
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp, body := post(t,
					srv.URL+"/v1/jobs/fit?global_only=1&no_growth=1&no_shocks=1",
					"text/csv", csv)
				if resp.StatusCode == http.StatusServiceUnavailable {
					continue
				}
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("submit status %d: %s", resp.StatusCode, body)
					return
				}
				var acc struct {
					JobID string `json:"job_id"`
				}
				if err := json.Unmarshal([]byte(body), &acc); err != nil {
					t.Errorf("accept body: %v", err)
					return
				}
				mu.Lock()
				jobIDs = append(jobIDs, acc.JobID)
				mu.Unlock()
				if i%2 == 0 {
					// Any of 202/404/409 is fine; racing terminality.
					doRequest(t, http.MethodDelete, srv.URL+"/v1/jobs/"+acc.JobID)
				}
				doRequest(t, http.MethodGet, srv.URL+"/v1/jobs/"+acc.JobID)
				doRequest(t, http.MethodGet, srv.URL+"/v1/models")
			}
		}(w)
	}
	// Stream appenders over a small shared set of stream ids.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", w%2)
			for i := 0; i < 6; i++ {
				resp, body := post(t, srv.URL+"/v1/streams/"+id+"/append?refit_every=25",
					"application/json", streamBody(10, 10*i, 9))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("append status %d: %s", resp.StatusCode, body)
					return
				}
				doRequest(t, http.MethodGet, srv.URL+"/v1/streams")
				doRequest(t, http.MethodGet, srv.URL+"/v1/streams/"+id)
			}
		}(w)
	}
	wg.Wait()

	// Every submitted job must still resolve to a terminal state.
	mu.Lock()
	ids := append([]string(nil), jobIDs...)
	mu.Unlock()
	for _, id := range ids {
		snap := waitJob(t, srv.URL, id)
		switch snap.State {
		case jobs.StateDone, jobs.StateCancelled, jobs.StateFailed:
		default:
			t.Errorf("job %s state %s", id, snap.State)
		}
	}
}
