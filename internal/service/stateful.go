// Stateful serving layer: models live server-side in a registry, fits run
// asynchronously on a jobs engine, and streams absorb ticks incrementally.
//
//	POST   /v1/jobs/fit             text/csv tensor → 202 {job_id, model_id}
//	                                ?model_id=ID&global_only=1&no_growth=1&…
//	GET    /v1/jobs                 list retained job snapshots
//	GET    /v1/jobs/{id}            job snapshot (state, error, result)
//	DELETE /v1/jobs/{id}            cancel → 202 (409 once terminal)
//	GET    /v1/models               list stored models
//	GET    /v1/models/{id}          model JSON
//	DELETE /v1/models/{id}          → 204
//	GET    /v1/models/{id}/forecast ?keyword=NAME&horizon=H
//	GET    /v1/models/{id}/events   detected events
//	POST   /v1/streams/{id}/append  {"values":[…]} (null = missing tick)
//	                                ?refit_every=N (honored on existing streams)
//	                                ?mode=batch|incremental (maintenance mode)
//	POST   /v1/streams/{id}/refit   force a full consolidating refit now
//	GET    /v1/streams              list streams
//	GET    /v1/streams/{id}         stream status (mode, refit debt, cadence)
//	GET    /v1/streams/{id}/forecast ?horizon=H (409 until first fit)
//	DELETE /v1/streams/{id}         → 204
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"dspot/internal/admit"
	"dspot/internal/dataset"
	"dspot/internal/engine"
	"dspot/internal/jobs"
	"dspot/internal/obs/trace"
	"dspot/internal/registry"
	"dspot/internal/tensor"
)

// statefulRoutes registers the registry- and jobs-backed endpoints on route
// (a no-op without a Registry; job endpoints additionally need Jobs).
func (s *Server) statefulRoutes(route func(string, http.HandlerFunc)) {
	if s.Registry == nil {
		return
	}
	if s.Jobs != nil {
		route("POST /v1/jobs/fit", s.handleJobFit)
		route("GET /v1/jobs", s.handleJobList)
		route("GET /v1/jobs/{id}", s.handleJobGet)
		route("DELETE /v1/jobs/{id}", s.handleJobCancel)
	}
	route("GET /v1/models", s.handleModelList)
	route("GET /v1/models/{id}", s.handleModelGet)
	route("DELETE /v1/models/{id}", s.handleModelDelete)
	route("GET /v1/models/{id}/forecast", s.handleModelForecast)
	route("GET /v1/models/{id}/events", s.handleModelEvents)
	route("POST /v1/streams/{id}/append", s.handleStreamAppend)
	route("POST /v1/streams/{id}/refit", s.handleStreamRefit)
	route("GET /v1/streams", s.handleStreamList)
	route("GET /v1/streams/{id}", s.handleStreamGet)
	route("GET /v1/streams/{id}/forecast", s.handleStreamForecast)
	route("DELETE /v1/streams/{id}", s.handleStreamDelete)
}

// registryError maps registry errors onto status codes.
func registryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, registry.ErrNotFound):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, registry.ErrBadID), errors.Is(err, registry.ErrBadRequest):
		httpError(w, http.StatusBadRequest, "%v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

// newModelID generates a model id for jobs that did not name one.
func newModelID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: randomness unavailable: %v", err))
	}
	return "m-" + hex.EncodeToString(b[:])
}

// FitJobResult is the stored result of a completed fit job.
type FitJobResult struct {
	ModelID   string `json:"model_id"`
	Version   int    `json:"version"`
	Engine    string `json:"engine"`
	Keywords  int    `json:"keywords"`
	Locations int    `json:"locations"`
	Ticks     int    `json:"ticks"`
	// Costs is the per-engine MDL cost table, present only for auto fits.
	Costs          map[string]float64 `json:"costs,omitempty"`
	Shocks         int                `json:"shocks"`
	LMIterations   int                `json:"lm_iterations"`
	ShocksTried    int                `json:"shocks_tried"`
	ShocksAccepted int                `json:"shocks_accepted"`
	FitSeconds     float64            `json:"fit_seconds"`
}

// handleJobFit parses the tensor synchronously (bad input fails fast with a
// 400, before consuming a queue slot) and enqueues the fit. The fit itself
// runs on the jobs engine and installs its model into the registry.
func (s *Server) handleJobFit(w http.ResponseWriter, r *http.Request) {
	// Engine resolution fails fast with a 400, before the body is parsed or
	// a queue slot is consumed.
	engName, ok := s.engineParam(w, r)
	if !ok {
		return
	}
	// Breaker early-reject (non-reserving): no point parsing a tensor and
	// consuming a queue slot for an engine that will shed the fit at run
	// time anyway. The reserving Acquire happens in runFitJob.
	if br := s.breakerFor(engName); br != nil && !br.Allow() {
		s.shedBreakerOpen(w, engName, br)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody())
	x, err := dataset.ReadCSV(body)
	if err != nil {
		httpError(w, bodyError(err), "parsing tensor: %v", err)
		return
	}
	// Same boundary validation as the sync endpoint: reject degenerate
	// numbers before the tensor consumes a queue slot. The fit job below
	// carries Prevalidated so the scan is not repeated per fit.
	if err := x.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid tensor: %v", err)
		return
	}
	modelID := r.URL.Query().Get("model_id")
	if modelID == "" {
		modelID = newModelID()
	} else if err := registry.ValidateID(modelID); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := s.fitOptions(r)
	// The request context dies when the 202 goes out; the job context is
	// installed in runFitJob instead.
	opts.Context = nil

	// SubmitCtx: the request span (in r.Context()) becomes the parent of
	// the job's queue-wait and run spans, so the async fit stays one trace
	// past the 202 below.
	jobID, err := s.Jobs.SubmitCtx(r.Context(), "fit", func(ctx context.Context) (any, error) {
		return s.runFitJob(ctx, x, opts, engName, modelID)
	})
	if err != nil {
		var over *jobs.OverBudgetError
		switch {
		case errors.As(err, &over):
			// Deadline-aware admission: the queue has room, but this request
			// cannot make its budget — reject now rather than time out later.
			s.shed(w, http.StatusTooManyRequests, shedResponse{
				Error:             err.Error(),
				Reason:            ShedOverBudget,
				QueueDepth:        s.Jobs.QueueLen(),
				QueueCap:          s.Jobs.QueueCap(),
				RetryAfterSeconds: admit.RetryAfterSeconds(over.Estimate),
			})
		case errors.Is(err, jobs.ErrQueueFull):
			s.shed(w, http.StatusServiceUnavailable, shedResponse{
				Error:      err.Error(),
				Reason:     ShedQueueFull,
				QueueDepth: s.Jobs.QueueLen(),
				QueueCap:   s.Jobs.QueueCap(),
			})
		default:
			httpError(w, http.StatusServiceUnavailable, "submitting job: %v", err)
		}
		return
	}
	w.WriteHeader(http.StatusAccepted)
	s.writeJSON(w, map[string]string{"job_id": jobID, "model_id": modelID})
}

// runFitJob is the body of one async fit: fit, observe, store. The job
// context rides down through FitOptions.Context into every fitting layer,
// so a cancel, job timeout, or server shutdown stops the compute itself
// within about one LM iteration — the job then finishes as cancelled
// through the jobs engine's normal path, not by abandonment.
func (s *Server) runFitJob(ctx context.Context, x *tensor.Tensor, opts engine.FitOptions, engName, modelID string) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The reserving breaker bracket: the Allow in handleJobFit was a
	// snapshot at submit time; by run time the breaker may have tripped.
	var release func(failure bool)
	if br := s.breakerFor(engName); br != nil {
		var admitted bool
		if release, admitted = br.Acquire(); !admitted {
			return nil, fmt.Errorf("engine %q circuit breaker open", engName)
		}
	}
	ft := engine.NewFitTrace()
	// The jobs engine installed the job.run span in ctx; fit-stage spans
	// become its children.
	opts.Progress = chainProgress(ft.Hook(),
		fitSpanHook(s.Tracer, trace.SpanContextOf(ctx), engName))
	opts.Context = ctx
	var m engine.Model
	var costs map[string]float64
	var err error
	if engName == engine.Auto {
		m, costs, err = engine.AutoFit(x, opts)
		if m != nil {
			engName = m.EngineName()
		}
	} else {
		var e engine.ModelEngine
		if e, err = engine.Lookup(engName); err == nil {
			m, err = e.Fit(x, opts)
		}
	}
	rep := ft.Report()
	s.Metrics.ObserveFitReport(rep)
	if span := trace.SpanFromContext(ctx); span != nil {
		span.SetAttr("engine", engName)
		span.SetAttr("model_id", modelID)
		span.SetAttr("keywords", rep.Keywords)
		span.SetAttr("lm_iterations", rep.LMIterations)
		span.SetAttr("shocks_accepted", rep.ShocksAccepted)
	}
	if s.Logger != nil {
		s.Logger.InfoContext(ctx, "job fit",
			"engine", engName,
			"model_id", modelID, "keywords", x.D(), "locations", x.L(),
			"ticks", x.N(), "lm_iterations", rep.LMIterations,
			"shocks_accepted", rep.ShocksAccepted, "err", err)
	}
	if err != nil {
		if release != nil {
			// Cancellation says nothing about engine health; a timeout or a
			// genuine fit failure is exactly what the breaker counts.
			release(!errors.Is(err, context.Canceled))
		}
		return nil, fmt.Errorf("fitting: %w", err)
	}
	if release != nil {
		release(false)
	}
	s.Metrics.ObserveFit(engName)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	info, err := s.Registry.Put(modelID, m)
	if err != nil {
		// Model is fine, the disk write failed — worth one retry.
		return nil, jobs.Transient(err)
	}
	return FitJobResult{
		ModelID: info.ID, Version: info.Version, Engine: info.Engine,
		Keywords: info.Keywords, Locations: info.Locations, Ticks: info.Ticks,
		Costs:          costs,
		Shocks:         len(eventsOf(m)),
		LMIterations:   rep.LMIterations,
		ShocksTried:    rep.ShocksTried,
		ShocksAccepted: rep.ShocksAccepted,
		FitSeconds:     rep.TotalDuration().Seconds(),
	}, nil
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]any{"jobs": s.Jobs.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Jobs.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.writeJSON(w, snap)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, jobs.ErrTerminal):
		httpError(w, http.StatusConflict, "job %s already %s", snap.ID, snap.State)
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
	default:
		w.WriteHeader(http.StatusAccepted)
		s.writeJSON(w, snap)
	}
}

func (s *Server) handleModelList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]any{"models": s.Registry.List()})
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	m, err := s.Registry.Get(r.PathValue("id"))
	if err != nil {
		registryError(w, err)
		return
	}
	s.writeModel(w, m, nil)
}

func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Registry.Delete(r.PathValue("id")); err != nil {
		registryError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleModelForecast(w http.ResponseWriter, r *http.Request) {
	m, err := s.Registry.Get(r.PathValue("id"))
	if err != nil {
		registryError(w, err)
		return
	}
	s.writeForecast(w, r, m)
}

func (s *Server) handleModelEvents(w http.ResponseWriter, r *http.Request) {
	m, err := s.Registry.Get(r.PathValue("id"))
	if err != nil {
		registryError(w, err)
		return
	}
	s.writeJSON(w, map[string]any{"events": eventsOf(m)})
}

// appendRequest is the /v1/streams/{id}/append body. Values uses null for
// missing ticks (JSON cannot carry NaN). At, when present, positions the
// first value at that absolute tick index: ticks the stream already holds
// drop idempotently (a replaying producer is a no-op), a forward gap is
// bridged with missing ticks, and a gap past the stream's limit answers 400.
type appendRequest struct {
	Values []*float64 `json:"values"`
	At     *int64     `json:"at,omitempty"`
}

func (s *Server) handleStreamAppend(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Append-lag admission: when the smoothed append latency already
	// exceeds the budget this request could tolerate, more ingest only
	// deepens the backlog — shed with 429 before reading the body.
	if budget, gated := s.appendBudget(r); gated {
		if est := s.appendEWMA().Estimate(); est > budget {
			s.shed(w, http.StatusTooManyRequests, shedResponse{
				Error: fmt.Sprintf("append latency %v exceeds admission budget %v",
					est.Round(time.Millisecond), budget.Round(time.Millisecond)),
				Reason:            ShedAppendLag,
				RetryAfterSeconds: admit.RetryAfterSeconds(est),
			})
			return
		}
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody())
	var req appendRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, bodyError(err), "parsing request: %v", err)
		return
	}
	if len(req.Values) == 0 {
		httpError(w, http.StatusBadRequest, "empty values")
		return
	}
	values := make([]float64, len(req.Values))
	for i, p := range req.Values {
		if p == nil {
			values[i] = tensor.Missing
			continue
		}
		if *p < 0 || math.IsInf(*p, 0) || math.IsNaN(*p) {
			httpError(w, http.StatusBadRequest, "bad value %g at index %d", *p, i)
			return
		}
		values[i] = *p
	}
	opts := registry.AppendOptions{}
	if re := r.URL.Query().Get("refit_every"); re != "" {
		n, err := strconv.Atoi(re)
		if err != nil || n < 1 || n > 1_000_000 {
			httpError(w, http.StatusBadRequest, "bad refit_every %q", re)
			return
		}
		opts.RefitEvery = n
	}
	if ret := r.URL.Query().Get("retention"); ret != "" {
		n, err := strconv.Atoi(ret)
		if err != nil || n < 0 || n > 100_000_000 {
			httpError(w, http.StatusBadRequest, "bad retention %q", ret)
			return
		}
		opts.Retention = n
	}
	if req.At != nil {
		if *req.At < 0 {
			httpError(w, http.StatusBadRequest, "bad at %d: absolute tick index must be >= 0", *req.At)
			return
		}
		opts.At, opts.AtSet = *req.At, true
	}
	// The mode string is passed through verbatim; the registry owns the
	// vocabulary ("batch"/"incremental") and rejects unknown names with
	// ErrBadRequest, which maps to a 400 below.
	opts.Mode = r.URL.Query().Get("mode")
	start := time.Now()
	status, err := s.Registry.AppendStream(r.Context(), id, values, opts)
	if err != nil {
		if errors.Is(err, registry.ErrBadID) || errors.Is(err, registry.ErrBadRequest) {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Only successful appends feed the lag estimate: a 400 is cheap and
	// says nothing about ingest health.
	s.appendEWMA().Observe(time.Since(start))
	s.writeJSON(w, status)
}

// handleStreamRefit forces a full consolidating refit, regardless of the
// stream's cadence, pending debt or retry backoff.
func (s *Server) handleStreamRefit(w http.ResponseWriter, r *http.Request) {
	status, err := s.Registry.RefitStream(r.Context(), r.PathValue("id"))
	if err != nil {
		registryError(w, err)
		return
	}
	s.writeJSON(w, status)
}

func (s *Server) handleStreamList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]any{"streams": s.Registry.ListStreams()})
}

func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	status, err := s.Registry.StreamStatusFor(r.PathValue("id"))
	if err != nil {
		registryError(w, err)
		return
	}
	s.writeJSON(w, status)
}

func (s *Server) handleStreamForecast(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	horizon, ok := horizonParam(w, r)
	if !ok {
		return
	}
	fc, err := s.Registry.StreamForecast(id, horizon)
	if err != nil {
		registryError(w, err)
		return
	}
	if fc == nil {
		httpError(w, http.StatusConflict, "stream %q has no fitted model yet", id)
		return
	}
	s.writeJSON(w, map[string]any{"id": id, "horizon": horizon, "forecast": fc})
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Registry.DeleteStream(r.PathValue("id")); err != nil {
		registryError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
