// Package service exposes Δ-SPOT over HTTP: fit a tensor, inspect events,
// forecast, and score anomalies — the deployment shape a team monitoring
// online activity would actually run. Handlers are plain net/http so the
// server embeds anywhere; cmd/dspot-serve is the thin binary.
//
//	POST /v1/fit        text/csv long-form tensor → fitted model JSON
//	                    ?global_only=1&no_growth=1&no_shocks=1&no_cycles=1
//	POST /v1/events     model JSON → events per keyword
//	POST /v1/forecast   model JSON → forecast + predicted events
//	                    ?keyword=NAME&horizon=H
//	POST /v1/anomalies  {"model":…, "series":[…], "keyword":…, "threshold":…}
//	GET  /healthz       liveness
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"dspot/internal/core"
	"dspot/internal/dataset"
)

// MaxBodyBytes bounds request bodies (tensors can be large but not
// unbounded).
const MaxBodyBytes = 64 << 20

// Server carries the handler configuration.
type Server struct {
	// Workers is the fitting concurrency per request.
	Workers int
}

// Handler returns the routed http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/fit", s.handleFit)
	mux.HandleFunc("/v1/events", s.handleEvents)
	mux.HandleFunc("/v1/forecast", s.handleForecast)
	mux.HandleFunc("/v1/anomalies", s.handleAnomalies)
	return mux
}

func (s *Server) workers() int {
	if s.Workers <= 0 {
		return 4
	}
	return s.Workers
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than drop the connection.
		return
	}
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	x, err := dataset.ReadCSV(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing tensor: %v", err)
		return
	}
	opts := core.FitOptions{
		Workers:       s.workers(),
		DisableGrowth: boolParam(r, "no_growth"),
		DisableShocks: boolParam(r, "no_shocks"),
		DisableCycles: boolParam(r, "no_cycles"),
	}
	var m *core.Model
	if boolParam(r, "global_only") {
		m, err = core.FitGlobal(x, opts)
	} else {
		m, err = core.Fit(x, opts)
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "fitting: %v", err)
		return
	}
	var buf bytes.Buffer
	if err := dataset.WriteModel(&buf, m); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding model: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

// readModel parses a model JSON request body.
func readModel(w http.ResponseWriter, r *http.Request) (*core.Model, bool) {
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	m, err := dataset.ReadModel(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing model: %v", err)
		return nil, false
	}
	return m, true
}

// EventJSON is one external shock in wire form.
type EventJSON struct {
	Keyword  string    `json:"keyword"`
	Period   int       `json:"period"`
	Start    int       `json:"start"`
	Width    int       `json:"width"`
	Strength []float64 `json:"strength"`
	Cyclic   bool      `json:"cyclic"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	m, ok := readModel(w, r)
	if !ok {
		return
	}
	out := make([]EventJSON, 0, len(m.Shocks))
	for _, sh := range m.Shocks {
		out = append(out, EventJSON{
			Keyword: m.Keywords[sh.Keyword], Period: sh.Period,
			Start: sh.Start, Width: sh.Width,
			Strength: sh.Strength, Cyclic: sh.Period > 0,
		})
	}
	writeJSON(w, map[string]any{"events": out})
}

// ForecastJSON is the forecast wire form.
type ForecastJSON struct {
	Keyword  string                `json:"keyword"`
	Horizon  int                   `json:"horizon"`
	Forecast []float64             `json:"forecast"`
	Events   []core.PredictedEvent `json:"predicted_events"`
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	m, ok := readModel(w, r)
	if !ok {
		return
	}
	i := 0
	if name := r.URL.Query().Get("keyword"); name != "" {
		i = -1
		for k, kw := range m.Keywords {
			if kw == name {
				i = k
			}
		}
		if i == -1 {
			httpError(w, http.StatusBadRequest, "unknown keyword %q", name)
			return
		}
	}
	horizon := 52
	if hs := r.URL.Query().Get("horizon"); hs != "" {
		h, err := strconv.Atoi(hs)
		if err != nil || h < 1 || h > 100000 {
			httpError(w, http.StatusBadRequest, "bad horizon %q", hs)
			return
		}
		horizon = h
	}
	writeJSON(w, ForecastJSON{
		Keyword: m.Keywords[i], Horizon: horizon,
		Forecast: m.ForecastGlobal(i, horizon),
		Events:   m.PredictedEvents(i, horizon),
	})
}

// anomaliesRequest is the /v1/anomalies body.
type anomaliesRequest struct {
	Model     json.RawMessage `json:"model"`
	Series    []float64       `json:"series"`
	Keyword   string          `json:"keyword"`
	Threshold float64         `json:"threshold"`
}

func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	var req anomaliesRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	m, err := dataset.ReadModel(bytes.NewReader(req.Model))
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing model: %v", err)
		return
	}
	if len(req.Series) == 0 {
		httpError(w, http.StatusBadRequest, "empty series")
		return
	}
	i := 0
	if req.Keyword != "" {
		i = -1
		for k, kw := range m.Keywords {
			if kw == req.Keyword {
				i = k
			}
		}
		if i == -1 {
			httpError(w, http.StatusBadRequest, "unknown keyword %q", req.Keyword)
			return
		}
	}
	writeJSON(w, map[string]any{
		"anomalies": m.AnomaliesGlobal(i, req.Series, req.Threshold),
	})
}
