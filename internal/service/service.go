// Package service exposes Δ-SPOT over HTTP: fit a tensor, inspect events,
// forecast, and score anomalies — the deployment shape a team monitoring
// online activity would actually run. Handlers are plain net/http so the
// server embeds anywhere; cmd/dspot-serve is the thin binary.
//
//	POST /v1/fit        text/csv long-form tensor → fitted model JSON
//	                    ?global_only=1&no_growth=1&no_shocks=1&no_cycles=1
//	POST /v1/events     model JSON → events per keyword
//	POST /v1/forecast   model JSON → forecast + predicted events
//	                    ?keyword=NAME&horizon=H
//	POST /v1/anomalies  {"model":…, "series":[…], "keyword":…, "threshold":…}
//	GET  /healthz       liveness
//	GET  /readyz        readiness: 503 + JSON reason while booting or the
//	                    job queue is saturated
//	GET  /metrics       Prometheus text exposition (when Metrics is set)
//
// With a Registry (and optionally a jobs Engine) the server additionally
// exposes the stateful serving layer — async fit jobs, server-side models
// and incremental streams; see stateful.go for the endpoint set.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"

	"dspot/internal/core"
	"dspot/internal/dataset"
	"dspot/internal/jobs"
	"dspot/internal/obs/trace"
	"dspot/internal/registry"
)

// MaxBodyBytes is the default request-body bound (tensors can be large but
// not unbounded); override per Server via MaxBody.
const MaxBodyBytes = 64 << 20

// Server carries the handler configuration.
type Server struct {
	// Workers is the fitting concurrency per request.
	Workers int
	// MaxBody bounds request bodies in bytes (0 selects MaxBodyBytes).
	MaxBody int64
	// Metrics, when non-nil, instruments every endpoint (request counts,
	// latency histograms, in-flight gauge, response sizes, fit-stage
	// timings) and serves the registry at GET /metrics.
	Metrics *Metrics
	// Logger, when non-nil, emits one structured line per request plus
	// fit summaries.
	Logger *slog.Logger
	// Registry, when non-nil, enables the stateful model/stream endpoints
	// (GET/DELETE /v1/models/{id}, forecasts and events served from stored
	// models, POST /v1/streams/{id}/append).
	Registry *registry.Registry
	// Jobs, when non-nil alongside Registry, enables the async fit-job
	// endpoints (POST /v1/jobs/fit and friends).
	Jobs *jobs.Engine
	// Ready, when non-nil, gates GET /readyz: a non-nil return means the
	// server is alive but should not receive traffic yet (registry still
	// loading, dependencies warming up). Independently of Ready, /readyz
	// also reports unready while the job queue is saturated.
	Ready func() error
	// Tracer, when non-nil, traces every request: an http.request span per
	// call (honouring inbound W3C traceparent headers, echoing X-Trace-Id),
	// fit-stage child spans, and — when the tracer has a flight recorder —
	// the GET /debug/traces[/{id}] endpoints serving completed traces.
	Tracer *trace.Tracer
}

// Handler returns the routed http.Handler, instrumented when Metrics
// and/or Logger are set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(path string, h http.HandlerFunc) {
		mux.Handle(path, instrument(path, s.Metrics, s.Logger, s.Tracer, h))
	}
	route("/healthz", s.handleHealth)
	route("/readyz", s.handleReady)
	route("/v1/fit", s.handleFit)
	route("/v1/events", s.handleEvents)
	route("/v1/forecast", s.handleForecast)
	route("/v1/anomalies", s.handleAnomalies)
	s.statefulRoutes(route)
	if s.Metrics != nil {
		// Not instrumented: scrapes should not move the request metrics.
		mux.Handle("/metrics", s.Metrics.Registry.Handler())
	}
	if rec := s.Tracer.Recorder(); rec != nil {
		// Not instrumented either: reading traces should not create them.
		mux.Handle("GET /debug/traces", rec.ListHandler())
		mux.Handle("GET /debug/traces/{id}", rec.GetHandler())
	}
	return mux
}

func (s *Server) workers() int {
	if s.Workers <= 0 {
		return 4
	}
	return s.Workers
}

func (s *Server) maxBody() int64 {
	if s.MaxBody <= 0 {
		return MaxBodyBytes
	}
	return s.MaxBody
}

// bodyError maps a request-body parse failure to a status code: 413 when
// the MaxBytesReader limit tripped, 400 otherwise.
func bodyError(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}

// writeJSON encodes v as the response body. Encode failures after the
// header is sent cannot be reported to the client, but silently swallowing
// them made truncated responses undiagnosable — log them when a Logger is
// configured.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil && s.Logger != nil {
		s.Logger.Error("response encode failed", "err", err)
	}
}

// requireMethod gates a handler to one method, answering 405 with the
// mandatory Allow header otherwise (RFC 9110 §15.5.6).
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		httpError(w, http.StatusMethodNotAllowed, "use %s", method)
		return false
	}
	return true
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	return requireMethod(w, r, http.MethodPost)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	s.writeJSON(w, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe, distinct from /healthz liveness: a
// live process may still be loading its registry or have a saturated job
// queue, and routing traffic to it then only turns into 5xxs downstream.
// Unready answers 503 with a JSON reason so operators see *why* from the
// probe output alone.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	if s.Ready != nil {
		if err := s.Ready(); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{
				"status": "unavailable", "reason": err.Error(),
			})
			return
		}
	}
	if s.Jobs != nil && s.Jobs.Saturated() {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{
			"status": "unavailable", "reason": "job queue saturated",
		})
		return
	}
	s.writeJSON(w, map[string]string{"status": "ready"})
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody())
	x, err := dataset.ReadCSV(body)
	if err != nil {
		httpError(w, bodyError(err), "parsing tensor: %v", err)
		return
	}
	// Validate at the boundary so degenerate numbers (Inf, negative counts)
	// answer 400 bad input, not 422 fit-failed. Prevalidated tells the
	// fitters not to repeat the O(d·l·n) scan.
	if err := x.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid tensor: %v", err)
		return
	}
	opts := core.FitOptions{
		Workers:       s.workers(),
		Prevalidated:  true,
		DisableGrowth: boolParam(r, "no_growth"),
		DisableShocks: boolParam(r, "no_shocks"),
		DisableCycles: boolParam(r, "no_cycles"),
		// A disconnecting client (or server shutdown draining this
		// request) cancels the fit instead of leaking it to completion.
		Context: r.Context(),
	}
	var ft *core.FitTrace
	if s.Metrics != nil || s.Logger != nil {
		ft = core.NewFitTrace()
		opts.Progress = ft.Hook()
	}
	// Mirror fit stage completions as child spans of the request span.
	opts.Progress = chainProgress(opts.Progress,
		fitSpanHook(s.Tracer, trace.SpanContextOf(r.Context())))
	var m *core.Model
	if boolParam(r, "global_only") {
		m, err = core.FitGlobal(x, opts)
	} else {
		m, err = core.Fit(x, opts)
	}
	if ft != nil {
		rep := ft.Report()
		s.Metrics.ObserveFitReport(rep)
		if s.Logger != nil {
			s.Logger.Info("fit",
				"keywords", x.D(), "locations", x.L(), "ticks", x.N(),
				"lm_iterations", rep.LMIterations,
				"shocks_tried", rep.ShocksTried,
				"shocks_accepted", rep.ShocksAccepted,
				"global_duration", rep.GlobalDuration,
				"local_duration", rep.LocalDuration,
				"err", err)
		}
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "fitting: %v", err)
		return
	}
	var buf bytes.Buffer
	if err := dataset.WriteModel(&buf, m); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding model: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

// readModel parses a model JSON request body.
func (s *Server) readModel(w http.ResponseWriter, r *http.Request) (*core.Model, bool) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody())
	m, err := dataset.ReadModel(body)
	if err != nil {
		httpError(w, bodyError(err), "parsing model: %v", err)
		return nil, false
	}
	return m, true
}

// EventJSON is one external shock in wire form.
type EventJSON struct {
	Keyword  string    `json:"keyword"`
	Period   int       `json:"period"`
	Start    int       `json:"start"`
	Width    int       `json:"width"`
	Strength []float64 `json:"strength"`
	Cyclic   bool      `json:"cyclic"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	m, ok := s.readModel(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, map[string]any{"events": eventsOf(m)})
}

// eventsOf renders a model's shocks in wire form.
func eventsOf(m *core.Model) []EventJSON {
	out := make([]EventJSON, 0, len(m.Shocks))
	for _, sh := range m.Shocks {
		out = append(out, EventJSON{
			Keyword: m.Keywords[sh.Keyword], Period: sh.Period,
			Start: sh.Start, Width: sh.Width,
			Strength: sh.Strength, Cyclic: sh.Period > 0,
		})
	}
	return out
}

// ForecastJSON is the forecast wire form.
type ForecastJSON struct {
	Keyword  string                `json:"keyword"`
	Horizon  int                   `json:"horizon"`
	Forecast []float64             `json:"forecast"`
	Events   []core.PredictedEvent `json:"predicted_events"`
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	m, ok := s.readModel(w, r)
	if !ok {
		return
	}
	s.writeForecast(w, r, m)
}

// keywordParam resolves the optional ?keyword= query against the model's
// keyword axis (first match wins; default index 0), answering 400 itself on
// an unknown name.
func keywordParam(w http.ResponseWriter, r *http.Request, m *core.Model) (int, bool) {
	name := r.URL.Query().Get("keyword")
	if name == "" {
		return 0, true
	}
	i, ok := m.KeywordIndex(name)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown keyword %q", name)
		return 0, false
	}
	return i, true
}

// horizonParam parses the optional ?horizon= query (default 52), answering
// 400 itself when out of range.
func horizonParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	hs := r.URL.Query().Get("horizon")
	if hs == "" {
		return 52, true
	}
	h, err := strconv.Atoi(hs)
	if err != nil || h < 1 || h > 100000 {
		httpError(w, http.StatusBadRequest, "bad horizon %q", hs)
		return 0, false
	}
	return h, true
}

// writeForecast answers a forecast request for m using the shared query
// conventions (?keyword=, ?horizon=).
func (s *Server) writeForecast(w http.ResponseWriter, r *http.Request, m *core.Model) {
	i, ok := keywordParam(w, r, m)
	if !ok {
		return
	}
	horizon, ok := horizonParam(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, ForecastJSON{
		Keyword: m.Keywords[i], Horizon: horizon,
		Forecast: m.ForecastGlobal(i, horizon),
		Events:   m.PredictedEvents(i, horizon),
	})
}

// anomaliesRequest is the /v1/anomalies body.
type anomaliesRequest struct {
	Model     json.RawMessage `json:"model"`
	Series    []float64       `json:"series"`
	Keyword   string          `json:"keyword"`
	Threshold float64         `json:"threshold"`
}

func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody())
	var req anomaliesRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, bodyError(err), "parsing request: %v", err)
		return
	}
	m, err := dataset.ReadModel(bytes.NewReader(req.Model))
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing model: %v", err)
		return
	}
	if len(req.Series) == 0 {
		httpError(w, http.StatusBadRequest, "empty series")
		return
	}
	i := 0
	if req.Keyword != "" {
		var ok bool
		if i, ok = m.KeywordIndex(req.Keyword); !ok {
			httpError(w, http.StatusBadRequest, "unknown keyword %q", req.Keyword)
			return
		}
	}
	s.writeJSON(w, map[string]any{
		"anomalies": m.AnomaliesGlobal(i, req.Series, req.Threshold),
	})
}
