// Package service exposes the model engines over HTTP: fit a tensor with
// any registered engine, inspect events, forecast, and score anomalies —
// the deployment shape a team monitoring online activity would actually
// run. Handlers are plain net/http so the server embeds anywhere;
// cmd/dspot-serve is the thin binary.
//
//	POST /v1/fit        text/csv long-form tensor → fitted model JSON
//	                    ?engine=dspot|hip|epidemic|funnel|auto
//	                    ?global_only=1&no_growth=1&no_shocks=1&no_cycles=1
//	                    engine=auto answers {"engine","costs","model"}
//	POST /v1/events     model JSON → events per keyword
//	POST /v1/forecast   model JSON → forecast + predicted events
//	                    ?keyword=NAME&horizon=H
//	POST /v1/anomalies  {"model":…, "series":[…], "keyword":…, "threshold":…}
//	GET  /healthz       liveness
//	GET  /readyz        readiness: 503 + JSON reason while booting or the
//	                    job queue is saturated
//	GET  /metrics       Prometheus text exposition (when Metrics is set)
//
// Model JSON bodies are routed to the engine named by their "engine" field;
// bodies without one (the pre-engine Δ-SPOT wire format) keep decoding as
// Δ-SPOT models, so existing clients are unaffected.
//
// With a Registry (and optionally a jobs Engine) the server additionally
// exposes the stateful serving layer — async fit jobs, server-side models
// and incremental streams; see stateful.go for the endpoint set.
//
// This package deliberately never imports internal/core — everything model
// routes through internal/engine, and CI enforces the import boundary
// (internal/dataset is imported for CSV tensor parsing only).
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dspot/internal/admit"
	"dspot/internal/dataset"
	"dspot/internal/engine"
	"dspot/internal/jobs"
	"dspot/internal/obs/trace"
	"dspot/internal/registry"
)

// MaxBodyBytes is the default request-body bound (tensors can be large but
// not unbounded); override per Server via MaxBody.
const MaxBodyBytes = 64 << 20

// Server carries the handler configuration.
type Server struct {
	// Workers is the fitting concurrency per request.
	Workers int
	// DefaultEngine names the model engine used when a fit request carries
	// no ?engine= parameter ("" selects engine.Default, the Δ-SPOT core).
	DefaultEngine string
	// MaxBody bounds request bodies in bytes (0 selects MaxBodyBytes).
	MaxBody int64
	// Metrics, when non-nil, instruments every endpoint (request counts,
	// latency histograms, in-flight gauge, response sizes, fit-stage
	// timings) and serves the registry at GET /metrics.
	Metrics *Metrics
	// Logger, when non-nil, emits one structured line per request plus
	// fit summaries.
	Logger *slog.Logger
	// Registry, when non-nil, enables the stateful model/stream endpoints
	// (GET/DELETE /v1/models/{id}, forecasts and events served from stored
	// models, POST /v1/streams/{id}/append).
	Registry *registry.Registry
	// Jobs, when non-nil alongside Registry, enables the async fit-job
	// endpoints (POST /v1/jobs/fit and friends).
	Jobs *jobs.Engine
	// Ready, when non-nil, gates GET /readyz: a non-nil return means the
	// server is alive but should not receive traffic yet (registry still
	// loading, dependencies warming up). Independently of Ready, /readyz
	// also reports unready while the job queue is saturated.
	Ready func() error
	// Tracer, when non-nil, traces every request: an http.request span per
	// call (honouring inbound W3C traceparent headers, echoing X-Trace-Id),
	// fit-stage child spans, and — when the tracer has a flight recorder —
	// the GET /debug/traces[/{id}] endpoints serving completed traces.
	Tracer *trace.Tracer
	// Breakers, when non-nil, guards every fit with a per-engine circuit
	// breaker: consecutive fit failures open it, open breakers shed fit
	// requests with a structured 503, and /readyz enumerates open breakers.
	// Build with NewBreakerSet to mirror state into engine_breaker_state.
	Breakers *admit.BreakerSet
	// AppendBudget, when positive, sheds stream appends with 429 while the
	// smoothed append latency exceeds it (a request deadline tightens the
	// budget further). Zero disables the gate except for requests that
	// carry their own deadline.
	AppendBudget time.Duration

	appendOnce sync.Once
	appendLat  *admit.EWMA
}

// Handler returns the routed http.Handler, instrumented when Metrics
// and/or Logger are set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(path string, h http.HandlerFunc) {
		mux.Handle(path, instrument(path, s.Metrics, s.Logger, s.Tracer, h))
	}
	route("/healthz", s.handleHealth)
	route("/readyz", s.handleReady)
	route("/v1/fit", s.handleFit)
	route("/v1/events", s.handleEvents)
	route("/v1/forecast", s.handleForecast)
	route("/v1/anomalies", s.handleAnomalies)
	s.statefulRoutes(route)
	if s.Metrics != nil {
		// Not instrumented: scrapes should not move the request metrics.
		mux.Handle("/metrics", s.Metrics.Registry.Handler())
	}
	if rec := s.Tracer.Recorder(); rec != nil {
		// Not instrumented either: reading traces should not create them.
		mux.Handle("GET /debug/traces", rec.ListHandler())
		mux.Handle("GET /debug/traces/{id}", rec.GetHandler())
	}
	return mux
}

func (s *Server) workers() int {
	if s.Workers <= 0 {
		return 4
	}
	return s.Workers
}

func (s *Server) maxBody() int64 {
	if s.MaxBody <= 0 {
		return MaxBodyBytes
	}
	return s.MaxBody
}

// bodyError maps a request-body parse failure to a status code: 413 when
// the MaxBytesReader limit tripped, 400 otherwise.
func bodyError(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}

// writeJSON encodes v as the response body. Encode failures after the
// header is sent cannot be reported to the client, but silently swallowing
// them made truncated responses undiagnosable — log them when a Logger is
// configured.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil && s.Logger != nil {
		s.Logger.Error("response encode failed", "err", err)
	}
}

// requireMethod gates a handler to one method, answering 405 with the
// mandatory Allow header otherwise (RFC 9110 §15.5.6).
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		httpError(w, http.StatusMethodNotAllowed, "use %s", method)
		return false
	}
	return true
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	return requireMethod(w, r, http.MethodPost)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	s.writeJSON(w, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe, distinct from /healthz liveness: a
// live process may still be loading its registry, have a saturated job
// queue, or be shedding an engine behind an open breaker — routing traffic
// to it then only turns into 5xxs downstream. Unready answers 503 with
// every tripped gate enumerated ("reasons"), the first one doubling as the
// single "reason" older probes parse, so operators see *why* from the
// probe output alone.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	var reasons []string
	if s.Ready != nil {
		if err := s.Ready(); err != nil {
			reasons = append(reasons, err.Error())
		}
	}
	if s.Jobs != nil && s.Jobs.Saturated() {
		reasons = append(reasons, "job queue saturated")
	}
	for _, name := range s.Breakers.Open() {
		reasons = append(reasons, "engine breaker open: "+name)
	}
	if len(reasons) > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": "unavailable", "reason": reasons[0], "reasons": reasons,
		})
		return
	}
	s.writeJSON(w, map[string]string{"status": "ready"})
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}

// engineParam resolves the optional ?engine= query (falling back to the
// server default), answering 400 itself on an unknown name. engine.Auto is
// a valid selection for fit endpoints.
func (s *Server) engineParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.URL.Query().Get("engine")
	if name == "" {
		name = s.DefaultEngine
	}
	if name == "" {
		name = engine.Default
	}
	if name != engine.Auto {
		if _, err := engine.Lookup(name); err != nil {
			httpError(w, http.StatusBadRequest,
				"unknown engine %q (registered: %v, or %q)", name, engine.Names(), engine.Auto)
			return "", false
		}
	}
	return name, true
}

// fitOptions builds the engine-independent fit options from the shared
// query conventions.
func (s *Server) fitOptions(r *http.Request) engine.FitOptions {
	return engine.FitOptions{
		Workers:       s.workers(),
		Prevalidated:  true,
		GlobalOnly:    boolParam(r, "global_only"),
		DisableGrowth: boolParam(r, "no_growth"),
		DisableShocks: boolParam(r, "no_shocks"),
		DisableCycles: boolParam(r, "no_cycles"),
		MaxShocks:     0,
		// A disconnecting client (or server shutdown draining this
		// request) cancels the fit instead of leaking it to completion.
		Context: r.Context(),
	}
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	engName, ok := s.engineParam(w, r)
	if !ok {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody())
	x, err := dataset.ReadCSV(body)
	if err != nil {
		httpError(w, bodyError(err), "parsing tensor: %v", err)
		return
	}
	// Validate at the boundary so degenerate numbers (Inf, negative counts)
	// answer 400 bad input, not 422 fit-failed. Prevalidated tells the
	// engines not to repeat the O(d·l·n) scan.
	if err := x.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid tensor: %v", err)
		return
	}
	// Breaker check sits after input validation: bad input answers 400 as
	// before, only a healthy-looking request can be shed by a sick engine.
	var release func(failure bool)
	if br := s.breakerFor(engName); br != nil {
		var admitted bool
		if release, admitted = br.Acquire(); !admitted {
			s.shedBreakerOpen(w, engName, br)
			return
		}
	}
	opts := s.fitOptions(r)
	var ft *engine.FitTrace
	if s.Metrics != nil || s.Logger != nil {
		ft = engine.NewFitTrace()
		opts.Progress = ft.Hook()
	}
	// Mirror fit stage completions as child spans of the request span.
	opts.Progress = chainProgress(opts.Progress,
		fitSpanHook(s.Tracer, trace.SpanContextOf(r.Context()), engName))
	var m engine.Model
	var costs map[string]float64
	if engName == engine.Auto {
		m, costs, err = engine.AutoFit(x, opts)
		if m != nil {
			engName = m.EngineName()
		}
	} else {
		var e engine.ModelEngine
		if e, err = engine.Lookup(engName); err == nil {
			m, err = e.Fit(x, opts)
		}
	}
	if ft != nil {
		rep := ft.Report()
		s.Metrics.ObserveFitReport(rep)
		if s.Logger != nil {
			s.Logger.Info("fit",
				"engine", engName,
				"keywords", x.D(), "locations", x.L(), "ticks", x.N(),
				"lm_iterations", rep.LMIterations,
				"shocks_tried", rep.ShocksTried,
				"shocks_accepted", rep.ShocksAccepted,
				"global_duration", rep.GlobalDuration,
				"local_duration", rep.LocalDuration,
				"err", err)
		}
	}
	if err != nil {
		if release != nil {
			// A client hang-up is not an engine failure; everything else
			// (including a deadline blown inside the fit) counts.
			release(!errors.Is(err, context.Canceled))
		}
		httpError(w, http.StatusUnprocessableEntity, "fitting: %v", err)
		return
	}
	if release != nil {
		release(false)
	}
	s.Metrics.ObserveFit(engName)
	s.writeModel(w, m, costs)
}

// writeModel answers a fit with the model in its engine's wire form. Auto
// fits (costs non-nil) wrap it in an envelope carrying the winning engine
// and the per-engine MDL cost table.
func (s *Server) writeModel(w http.ResponseWriter, m engine.Model, costs map[string]float64) {
	e, err := engine.Lookup(m.EngineName())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding model: %v", err)
		return
	}
	var buf bytes.Buffer
	if err := e.EncodeModel(&buf, m); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding model: %v", err)
		return
	}
	if costs == nil {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf.Bytes())
		return
	}
	s.writeJSON(w, map[string]any{
		"engine": m.EngineName(),
		"costs":  costs,
		"model":  json.RawMessage(buf.Bytes()),
	})
}

// readModel parses a model JSON request body, whatever engine produced it.
func (s *Server) readModel(w http.ResponseWriter, r *http.Request) (engine.Model, bool) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody())
	raw, err := io.ReadAll(body)
	if err != nil {
		httpError(w, bodyError(err), "reading model: %v", err)
		return nil, false
	}
	m, err := decodeModelJSON(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing model: %v", err)
		return nil, false
	}
	return m, true
}

// decodeModelJSON routes a model body to the engine named by its "engine"
// field. Bodies without one are the pre-engine Δ-SPOT wire format, which
// engine.Decode("") handles, so existing clients keep working.
func decodeModelJSON(raw []byte) (engine.Model, error) {
	var probe struct {
		Engine string `json:"engine"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, err
	}
	return engine.Decode(probe.Engine, bytes.NewReader(raw))
}

// EventJSON is one external event in wire form.
type EventJSON = engine.Event

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	m, ok := s.readModel(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, map[string]any{"events": eventsOf(m)})
}

// eventsOf renders a model's detected events in wire form. Engines without
// event structure (epidemic, hip) answer an empty list, not an error.
func eventsOf(m engine.Model) []EventJSON {
	if l, ok := m.(engine.EventLister); ok {
		return l.Events()
	}
	return []EventJSON{}
}

// ForecastJSON is the forecast wire form.
type ForecastJSON struct {
	Keyword  string                  `json:"keyword"`
	Horizon  int                     `json:"horizon"`
	Forecast []float64               `json:"forecast"`
	Events   []engine.PredictedEvent `json:"predicted_events"`
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	m, ok := s.readModel(w, r)
	if !ok {
		return
	}
	s.writeForecast(w, r, m)
}

// keywordParam resolves the optional ?keyword= query against the model's
// keyword axis (default: the first keyword), answering 400 itself on an
// unknown name.
func keywordParam(w http.ResponseWriter, r *http.Request, m engine.Model) (string, bool) {
	kws := m.Keywords()
	name := r.URL.Query().Get("keyword")
	if name == "" {
		if len(kws) == 0 {
			httpError(w, http.StatusBadRequest, "model has no keywords")
			return "", false
		}
		return kws[0], true
	}
	for _, kw := range kws {
		if kw == name {
			return name, true
		}
	}
	httpError(w, http.StatusBadRequest, "unknown keyword %q", name)
	return "", false
}

// horizonParam parses the optional ?horizon= query (default 52), answering
// 400 itself when out of range.
func horizonParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	hs := r.URL.Query().Get("horizon")
	if hs == "" {
		return 52, true
	}
	h, err := strconv.Atoi(hs)
	if err != nil || h < 1 || h > 100000 {
		httpError(w, http.StatusBadRequest, "bad horizon %q", hs)
		return 0, false
	}
	return h, true
}

// writeForecast answers a forecast request for m using the shared query
// conventions (?keyword=, ?horizon=), routed through the model's engine.
func (s *Server) writeForecast(w http.ResponseWriter, r *http.Request, m engine.Model) {
	kw, ok := keywordParam(w, r, m)
	if !ok {
		return
	}
	horizon, ok := horizonParam(w, r)
	if !ok {
		return
	}
	e, err := engine.Lookup(m.EngineName())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "model engine: %v", err)
		return
	}
	fc, err := e.Forecast(m, kw, horizon)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "forecasting: %v", err)
		return
	}
	out := ForecastJSON{Keyword: kw, Horizon: horizon, Forecast: fc}
	if ef, ok := m.(engine.EventForecaster); ok {
		// Event prediction shares keyword resolution with the forecast, so
		// an error here would already have surfaced above.
		out.Events, _ = ef.PredictedEvents(kw, horizon)
	}
	s.writeJSON(w, out)
}

// anomaliesRequest is the /v1/anomalies body.
type anomaliesRequest struct {
	Model     json.RawMessage `json:"model"`
	Series    []float64       `json:"series"`
	Keyword   string          `json:"keyword"`
	Threshold float64         `json:"threshold"`
}

func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody())
	var req anomaliesRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, bodyError(err), "parsing request: %v", err)
		return
	}
	m, err := decodeModelJSON(req.Model)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing model: %v", err)
		return
	}
	if len(req.Series) == 0 {
		httpError(w, http.StatusBadRequest, "empty series")
		return
	}
	scorer, ok := m.(engine.AnomalyScorer)
	if !ok {
		httpError(w, http.StatusBadRequest,
			"engine %q does not score anomalies", m.EngineName())
		return
	}
	anomalies, err := scorer.Anomalies(req.Keyword, req.Series, req.Threshold)
	if err != nil {
		httpError(w, http.StatusBadRequest, "scoring: %v", err)
		return
	}
	s.writeJSON(w, map[string]any{"anomalies": anomalies})
}
