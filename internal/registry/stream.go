package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dspot/internal/core"
	"dspot/internal/engine"
	"dspot/internal/numcheck"
	"dspot/internal/obs/trace"
	"dspot/internal/tensor"
)

// stream is one named incremental series. Its mutex serialises appends and
// snapshots per stream; fits run under it but never under the registry
// lock, so long refits on one stream do not stall the rest of the server.
type stream struct {
	id string

	mu     sync.Mutex
	s      *core.Stream
	refits int
}

// StreamStatus is the client-visible state of a stream.
type StreamStatus struct {
	ID       string `json:"id"`
	Len      int    `json:"len"`
	Ready    bool   `json:"ready"`
	Refits   int    `json:"refits"`
	Refitted bool   `json:"refitted,omitempty"` // set by AppendStream only
}

// streamJSON is the persisted snapshot. JSON cannot carry NaN, so the
// sequence is encoded with null marking missing ticks.
type streamJSON struct {
	RefitEvery int                   `json:"refit_every"`
	Seq        []*float64            `json:"seq"`
	Fitted     bool                  `json:"fitted"`
	Result     *core.GlobalFitResult `json:"result,omitempty"`
	SinceRefit int                   `json:"since_refit"`
	Refits     int                   `json:"refits"`
}

func (r *Registry) streamPath(id string) string {
	return filepath.Join(r.dir, streamsDir, id+".json")
}

// AppendStream appends ticks to the named stream, creating it on first
// use (refitEvery applies only then; 0 selects the registry default). The
// incremental refit — when one triggers — runs outside the registry lock
// and under ctx (nil = never cancelled): a cancelled or timed-out refit
// stops cooperatively, keeps the stream's last good fit, and is retried on
// the next trigger. With a data dir the post-append state is snapshotted
// atomically so a restart resumes the stream mid-series.
func (r *Registry) AppendStream(ctx context.Context, id string, values []float64, refitEvery int) (status StreamStatus, err error) {
	start := time.Now()
	ctx, span := r.opts.Tracer.Start(ctx, "stream.append",
		trace.String("stream_id", id), trace.Int("ticks", len(values)))
	defer func() {
		r.opts.Metrics.streamAppend(time.Since(start))
		span.SetAttr("refitted", status.Refitted)
		if err != nil {
			span.SetAttr("err", err.Error())
		}
		span.End()
	}()
	if err := ValidateID(id); err != nil {
		return StreamStatus{}, err
	}
	if len(values) == 0 {
		return StreamStatus{}, errors.New("registry: empty append")
	}
	st := r.getOrCreateStream(id, refitEvery)
	st.mu.Lock()
	defer st.mu.Unlock()
	refitted, err := st.s.AppendCtx(ctx, values...)
	if err != nil {
		return StreamStatus{}, fmt.Errorf("registry: stream %q: %w", id, err)
	}
	if refitted {
		st.refits++
		r.opts.Metrics.streamRefit()
	}
	status = StreamStatus{ID: id, Len: st.s.Len(), Ready: st.s.Ready(),
		Refits: st.refits, Refitted: refitted}
	if r.dir != "" {
		if perr := r.saveStream(st); perr != nil {
			r.opts.Metrics.persistError()
			r.logger().Error("registry: persisting stream", "id", id, "err", perr)
			return status, fmt.Errorf("registry: persisting stream %q: %w", id, perr)
		}
	}
	return status, nil
}

func (r *Registry) getOrCreateStream(id string, refitEvery int) *stream {
	r.streamMu.Lock()
	defer r.streamMu.Unlock()
	if st, ok := r.streams[id]; ok {
		return st
	}
	if refitEvery <= 0 {
		refitEvery = r.opts.RefitEvery
	}
	st := &stream{id: id, s: core.NewStream(r.opts.StreamFit, refitEvery)}
	r.streams[id] = st
	r.opts.Metrics.setStreams(len(r.streams))
	return st
}

// StreamStatusFor returns the named stream's state.
func (r *Registry) StreamStatusFor(id string) (StreamStatus, error) {
	st, err := r.lookupStream(id)
	if err != nil {
		return StreamStatus{}, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return StreamStatus{ID: id, Len: st.s.Len(), Ready: st.s.Ready(), Refits: st.refits}, nil
}

// StreamModel materialises the named stream's current model (nil until the
// first fit), engine-typed for the serving layer. Streams always fit with
// the Δ-SPOT core, so the result is a DspotModel. The model is a deep copy
// — safe to hand to encoders.
func (r *Registry) StreamModel(id string) (engine.Model, error) {
	st, err := r.lookupStream(id)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	m := st.s.Model()
	if m == nil {
		return nil, nil
	}
	return engine.NewDspotModel(m), nil
}

// StreamForecast extrapolates h ticks past the stream head (nil until the
// first fit).
func (r *Registry) StreamForecast(id string, h int) ([]float64, error) {
	st, err := r.lookupStream(id)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.s.Forecast(h), nil
}

// DeleteStream removes a stream from memory and disk.
func (r *Registry) DeleteStream(id string) error {
	r.streamMu.Lock()
	_, ok := r.streams[id]
	if ok {
		delete(r.streams, id)
		r.opts.Metrics.setStreams(len(r.streams))
	}
	r.streamMu.Unlock()
	if !ok {
		return fmt.Errorf("%w: stream %q", ErrNotFound, id)
	}
	if r.dir != "" {
		if err := r.fs.Remove(r.streamPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("registry: removing stream %q: %w", id, err)
		}
	}
	return nil
}

// ListStreams returns the status of every stream, sorted by id.
func (r *Registry) ListStreams() []StreamStatus {
	r.streamMu.Lock()
	streams := make([]*stream, 0, len(r.streams))
	for _, st := range r.streams {
		streams = append(streams, st)
	}
	r.streamMu.Unlock()
	out := make([]StreamStatus, 0, len(streams))
	for _, st := range streams {
		st.mu.Lock()
		out = append(out, StreamStatus{ID: st.id, Len: st.s.Len(),
			Ready: st.s.Ready(), Refits: st.refits})
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (r *Registry) lookupStream(id string) (*stream, error) {
	r.streamMu.Lock()
	defer r.streamMu.Unlock()
	st, ok := r.streams[id]
	if !ok {
		return nil, fmt.Errorf("%w: stream %q", ErrNotFound, id)
	}
	return st, nil
}

// saveStream snapshots one stream atomically (st.mu held by the caller).
func (r *Registry) saveStream(st *stream) error {
	state := st.s.State()
	sj := streamJSON{
		RefitEvery: state.RefitEvery,
		Seq:        encodeSeq(state.Seq),
		Fitted:     state.Fitted,
		SinceRefit: state.SinceRefit,
		Refits:     st.refits,
	}
	if state.Fitted {
		res := state.Result
		sj.Result = &res
	}
	data, err := json.Marshal(sj)
	if err != nil {
		return err
	}
	return writeFileAtomic(r.fs, r.streamPath(st.id), data)
}

// decodeStreamState parses and validates one persisted snapshot. It is the
// trust boundary for stream files (fuzzed by FuzzRestoreState): the decoded
// sequence must contain no Inf or negative counts (NaN is the missing
// sentinel and fine), and a fitted snapshot must materialise a model that
// passes the same validation Put applies.
func decodeStreamState(data []byte) (core.StreamState, int, error) {
	var sj streamJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return core.StreamState{}, 0, err
	}
	state := core.StreamState{
		RefitEvery: sj.RefitEvery,
		Seq:        decodeSeq(sj.Seq),
		Fitted:     sj.Fitted,
		SinceRefit: sj.SinceRefit,
	}
	if err := numcheck.Sequence("stream snapshot", state.Seq); err != nil {
		return core.StreamState{}, 0, err
	}
	if sj.Result != nil {
		state.Result = *sj.Result
	}
	if state.Fitted {
		if err := validateStreamState(&state); err != nil {
			return core.StreamState{}, 0, err
		}
	}
	return state, sj.Refits, nil
}

// loadStreams restores every snapshot under streams/. A corrupt or invalid
// snapshot is quarantined as <file>.corrupt and skipped — one bad stream
// must not block the boot, but leaving the bad file in place would re-fail
// (and previously silently re-skip) on every restart.
func (r *Registry) loadStreams() error {
	entries, err := r.fs.ReadDir(filepath.Join(r.dir, streamsDir))
	if err != nil {
		return fmt.Errorf("registry: scanning streams: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		path := filepath.Join(r.dir, streamsDir, name)
		if err := ValidateID(id); err != nil {
			r.quarantine(path, "stream", id, err)
			continue
		}
		data, err := r.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("registry: reading stream %q: %w", id, err)
		}
		state, refits, err := decodeStreamState(data)
		if err != nil {
			r.quarantine(path, "stream", id, err)
			continue
		}
		r.streams[id] = &stream{id: id,
			s:      core.RestoreStream(r.opts.StreamFit, state),
			refits: refits}
	}
	r.opts.Metrics.setStreams(len(r.streams))
	return nil
}

// validateStreamState sanity-checks a fitted snapshot by materialising its
// model through the same validation Put applies.
func validateStreamState(state *core.StreamState) error {
	probe := core.RestoreStream(core.FitOptions{}, *state)
	m := probe.Model()
	if m == nil {
		return errors.New("fitted snapshot has no model")
	}
	return m.Validate()
}

// encodeSeq maps missing ticks to JSON null.
func encodeSeq(seq []float64) []*float64 {
	out := make([]*float64, len(seq))
	for i, v := range seq {
		if tensor.IsMissing(v) {
			continue
		}
		v := v
		out[i] = &v
	}
	return out
}

// decodeSeq maps JSON null back to the missing sentinel.
func decodeSeq(seq []*float64) []float64 {
	out := make([]float64, len(seq))
	for i, p := range seq {
		if p == nil {
			out[i] = tensor.Missing
			continue
		}
		out[i] = *p
	}
	return out
}
