package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dspot/internal/core"
	"dspot/internal/engine"
	"dspot/internal/numcheck"
	"dspot/internal/obs/trace"
	"dspot/internal/tensor"
)

// stream is one named incremental series. Its mutex serialises appends and
// snapshots per stream; fits run under it but never under the registry
// lock, so long refits on one stream do not stall the rest of the server.
type stream struct {
	id string

	mu     sync.Mutex
	s      *core.Stream
	refits int
}

// StreamStatus is the client-visible state of a stream, including the
// effective maintenance configuration (mode and cadence) so callers can tell
// whether a requested change actually took effect.
type StreamStatus struct {
	ID         string  `json:"id"`
	Len        int     `json:"len"`
	Ready      bool    `json:"ready"`
	Refits     int     `json:"refits"`
	Mode       string  `json:"mode"`
	RefitEvery int     `json:"refit_every"`
	Debt       float64 `json:"debt,omitempty"`
	DebtLimit  float64 `json:"debt_limit,omitempty"`
	RetryIn    int     `json:"retry_in,omitempty"` // ticks until a failed refit retries
	Refitted   bool    `json:"refitted,omitempty"` // set by AppendStream only

	// Bounded-memory and hostile-input accounting. Head is the absolute
	// tick index the next append lands on (Evicted + Len — it never
	// decreases); Dropped/GapFilled count duplicate ticks ignored and
	// missing ticks synthesised; Deferred counts refits the scheduler
	// pushed back.
	Head      int64 `json:"head,omitempty"`
	Retention int   `json:"retention,omitempty"`
	Evicted   int64 `json:"evicted_ticks,omitempty"`
	Dropped   int64 `json:"dropped_ticks,omitempty"`
	GapFilled int64 `json:"gap_filled_ticks,omitempty"`
	Deferred  int64 `json:"deferred_refits,omitempty"`
}

// AppendOptions carries per-append stream configuration. Zero values mean
// "leave as is": a positive RefitEvery (re)sets the cadence — on existing
// streams too, not only at creation — a non-empty Mode switches the
// maintenance mode ("batch" or "incremental"), and a positive Retention
// (re)bounds the stream's sliding window. AtSet positions the append at
// absolute tick index At: the overlap with already-ingested ticks is
// dropped idempotently and a forward gap is bridged with missing ticks
// (bounded — see core.Stream.AppendAtCtx).
type AppendOptions struct {
	RefitEvery int
	Mode       string
	Retention  int
	At         int64
	AtSet      bool
}

// streamJSON is the persisted snapshot. JSON cannot carry NaN, so the
// sequence is encoded with null marking missing ticks. The incremental
// fields are omitted when zero, which is also how legacy batch snapshots —
// written before incremental maintenance existed — decode: mode "" maps to
// RefitBatch with no pending debt, preserving their historical behaviour.
type streamJSON struct {
	RefitEvery int                   `json:"refit_every"`
	Seq        []*float64            `json:"seq"`
	Fitted     bool                  `json:"fitted"`
	Result     *core.GlobalFitResult `json:"result,omitempty"`
	SinceRefit int                   `json:"since_refit"`
	Refits     int                   `json:"refits"`

	Mode       string     `json:"mode,omitempty"`
	TailWindow int        `json:"tail_window,omitempty"`
	DebtLimit  float64    `json:"debt_limit,omitempty"`
	Debt       float64    `json:"debt,omitempty"`
	Failures   int        `json:"refit_failures,omitempty"`
	CoolOff    int        `json:"refit_cooloff,omitempty"`
	LastScan   *int       `json:"last_scan,omitempty"` // nil = no peak examined yet (-1)
	Future     []*float64 `json:"future,omitempty"`    // projected per-shock strengths

	// Bounded-memory bookkeeping; zero (omitted) decodes legacy snapshots
	// as unbounded streams that never dropped a tick.
	Retention int   `json:"retention,omitempty"`
	Evicted   int64 `json:"evicted_ticks,omitempty"`
	Dropped   int64 `json:"dropped_ticks,omitempty"`
	GapFilled int64 `json:"gap_ticks,omitempty"`
	Deferred  int64 `json:"deferred_refits,omitempty"`
}

func (r *Registry) streamPath(id string) string {
	return filepath.Join(r.dir, streamsDir, id+".json")
}

// AppendStream appends ticks to the named stream, creating it on first use.
// opts.RefitEvery, when positive, sets the refit cadence — honored on
// existing streams too, with the effective value reported in the returned
// StreamStatus. opts.Mode ("batch"/"incremental") likewise switches the
// maintenance mode; "" keeps the current one. A full refit — when one
// triggers — runs outside the registry lock and under ctx (nil = never
// cancelled): a cancelled or timed-out refit stops cooperatively, keeps the
// stream's last good fit, and is retried per the stream's backoff schedule.
// With a data dir the post-append state is snapshotted atomically so a
// restart resumes the stream mid-series.
func (r *Registry) AppendStream(ctx context.Context, id string, values []float64, opts AppendOptions) (status StreamStatus, err error) {
	start := time.Now()
	refitted := false
	ctx, span := r.opts.Tracer.Start(ctx, "stream.append",
		trace.String("stream_id", id), trace.Int("ticks", len(values)))
	defer func() {
		path := "incremental"
		if refitted {
			path = "full"
		}
		r.opts.Metrics.streamAppend(path, time.Since(start))
		span.SetAttr("refitted", refitted)
		if err != nil {
			span.SetAttr("err", err.Error())
		}
		span.End()
	}()
	if err := ValidateID(id); err != nil {
		return StreamStatus{}, err
	}
	if len(values) == 0 {
		return StreamStatus{}, errors.New("registry: empty append")
	}
	mode, ok := core.ParseRefitMode(opts.Mode)
	if !ok {
		return StreamStatus{}, fmt.Errorf("%w: unknown stream mode %q", ErrBadRequest, opts.Mode)
	}
	st := r.getOrCreateStream(id, opts)
	st.mu.Lock()
	defer st.mu.Unlock()
	if opts.RefitEvery > 0 {
		st.s.SetRefitEvery(opts.RefitEvery)
	}
	if opts.Mode != "" {
		st.s.SetMode(mode)
	}
	if opts.Retention > 0 {
		st.s.SetRetention(opts.Retention)
	}
	at := int64(-1)
	if opts.AtSet {
		at = opts.At
	}
	rec, err := st.s.AppendAtCtx(ctx, at, values...)
	if err != nil {
		if errors.Is(err, core.ErrGapTooLarge) {
			r.opts.Metrics.streamRejected("gap_too_large", len(values))
			return StreamStatus{}, fmt.Errorf("%w: stream %q: %v", ErrBadRequest, id, err)
		}
		return StreamStatus{}, fmt.Errorf("registry: stream %q: %w", id, err)
	}
	refitted = rec.Refitted
	r.opts.Metrics.streamRejected("duplicate", rec.DroppedTicks)
	r.opts.Metrics.streamGapFilled(rec.GapTicks)
	r.opts.Metrics.streamEvicted(rec.EvictedTicks)
	if rec.Deferred {
		r.opts.Metrics.streamRefitDeferred()
	}
	if refitted {
		st.refits++
		r.opts.Metrics.streamRefit()
	}
	status = st.statusLocked()
	status.Refitted = refitted
	if r.dir != "" {
		if perr := r.saveStream(st); perr != nil {
			r.opts.Metrics.persistError()
			r.logger().Error("registry: persisting stream", "id", id, "err", perr)
			return status, fmt.Errorf("registry: persisting stream %q: %w", id, perr)
		}
	}
	return status, nil
}

// RefitStream forces a full consolidating refit of the named stream now,
// regardless of cadence, pending debt or retry backoff.
func (r *Registry) RefitStream(ctx context.Context, id string) (StreamStatus, error) {
	st, err := r.lookupStream(id)
	if err != nil {
		return StreamStatus{}, err
	}
	start := time.Now()
	ctx, span := r.opts.Tracer.Start(ctx, "stream.refit", trace.String("stream_id", id))
	defer span.End()
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.s.RefitNow(ctx); err != nil {
		span.SetAttr("err", err.Error())
		return StreamStatus{}, fmt.Errorf("registry: stream %q: %w", id, err)
	}
	st.refits++
	r.opts.Metrics.streamRefit()
	r.opts.Metrics.streamAppend("full", time.Since(start))
	status := st.statusLocked()
	status.Refitted = true
	if r.dir != "" {
		if perr := r.saveStream(st); perr != nil {
			r.opts.Metrics.persistError()
			return status, fmt.Errorf("registry: persisting stream %q: %w", id, perr)
		}
	}
	return status, nil
}

// statusLocked builds the client-visible status (st.mu held by the caller).
func (st *stream) statusLocked() StreamStatus {
	return StreamStatus{ID: st.id, Len: st.s.Len(), Ready: st.s.Ready(),
		Refits: st.refits, Mode: st.s.Mode().String(), RefitEvery: st.s.RefitEvery(),
		Debt: st.s.Debt(), DebtLimit: st.s.DebtLimit(), RetryIn: st.s.RetryIn(),
		Head: st.s.Head(), Retention: st.s.Retention(), Evicted: st.s.EvictedTicks(),
		Dropped: st.s.DroppedTicks(), GapFilled: st.s.GapTicks(),
		Deferred: st.s.DeferredRefits()}
}

func (r *Registry) getOrCreateStream(id string, opts AppendOptions) *stream {
	r.streamMu.Lock()
	defer r.streamMu.Unlock()
	if st, ok := r.streams[id]; ok {
		return st
	}
	refitEvery := opts.RefitEvery
	if refitEvery <= 0 {
		refitEvery = r.opts.RefitEvery
	}
	mode := opts.Mode
	if mode == "" {
		mode = r.opts.StreamMode
	}
	var s *core.Stream
	if m, _ := core.ParseRefitMode(mode); m == core.RefitIncremental {
		s = core.NewIncrementalStream(r.opts.StreamFit, refitEvery, r.opts.StreamIncremental)
	} else {
		s = core.NewStream(r.opts.StreamFit, refitEvery)
	}
	r.configureStream(id, s)
	st := &stream{id: id, s: s}
	r.streams[id] = st
	r.opts.Metrics.setStreams(len(r.streams))
	return st
}

// StreamStatusFor returns the named stream's state.
func (r *Registry) StreamStatusFor(id string) (StreamStatus, error) {
	st, err := r.lookupStream(id)
	if err != nil {
		return StreamStatus{}, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.statusLocked(), nil
}

// StreamModel materialises the named stream's current model (nil until the
// first fit), engine-typed for the serving layer. Streams always fit with
// the Δ-SPOT core, so the result is a DspotModel. The model is a deep copy
// — safe to hand to encoders.
func (r *Registry) StreamModel(id string) (engine.Model, error) {
	st, err := r.lookupStream(id)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	m := st.s.Model()
	if m == nil {
		return nil, nil
	}
	return engine.NewDspotModel(m), nil
}

// StreamForecast extrapolates h ticks past the stream head (nil until the
// first fit).
func (r *Registry) StreamForecast(id string, h int) ([]float64, error) {
	st, err := r.lookupStream(id)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.s.Forecast(h), nil
}

// DeleteStream removes a stream from memory and disk.
func (r *Registry) DeleteStream(id string) error {
	r.streamMu.Lock()
	_, ok := r.streams[id]
	if ok {
		delete(r.streams, id)
		r.opts.Metrics.setStreams(len(r.streams))
	}
	r.streamMu.Unlock()
	if !ok {
		return fmt.Errorf("%w: stream %q", ErrNotFound, id)
	}
	if r.dir != "" {
		if err := r.fs.Remove(r.streamPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("registry: removing stream %q: %w", id, err)
		}
	}
	return nil
}

// ListStreams returns the status of every stream, sorted by id.
func (r *Registry) ListStreams() []StreamStatus {
	r.streamMu.Lock()
	streams := make([]*stream, 0, len(r.streams))
	for _, st := range r.streams {
		streams = append(streams, st)
	}
	r.streamMu.Unlock()
	out := make([]StreamStatus, 0, len(streams))
	for _, st := range streams {
		st.mu.Lock()
		out = append(out, st.statusLocked())
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (r *Registry) lookupStream(id string) (*stream, error) {
	r.streamMu.Lock()
	defer r.streamMu.Unlock()
	st, ok := r.streams[id]
	if !ok {
		return nil, fmt.Errorf("%w: stream %q", ErrNotFound, id)
	}
	return st, nil
}

// saveStream snapshots one stream atomically (st.mu held by the caller).
func (r *Registry) saveStream(st *stream) error {
	state := st.s.State()
	sj := streamJSON{
		RefitEvery: state.RefitEvery,
		Seq:        encodeSeq(state.Seq),
		Fitted:     state.Fitted,
		SinceRefit: state.SinceRefit,
		Refits:     st.refits,
		Mode:       "",
		TailWindow: state.TailWindow,
		DebtLimit:  state.DebtLimit,
		Debt:       state.Debt,
		Failures:   state.Failures,
		CoolOff:    state.CoolOff,
		Future:     encodeSeq(state.Future),
		Retention:  state.Retention,
		Evicted:    state.Evicted,
		Dropped:    state.Dropped,
		GapFilled:  state.GapFilled,
		Deferred:   state.Deferred,
	}
	if state.Mode != core.RefitBatch {
		sj.Mode = state.Mode.String()
	}
	if state.LastScan >= 0 {
		ls := state.LastScan
		sj.LastScan = &ls
	}
	if len(state.Future) == 0 {
		sj.Future = nil
	}
	if state.Fitted {
		res := state.Result
		sj.Result = &res
	}
	data, err := json.Marshal(sj)
	if err != nil {
		return err
	}
	return writeFileAtomic(r.fs, r.streamPath(st.id), data)
}

// decodeStreamState parses and validates one persisted snapshot. It is the
// trust boundary for stream files (fuzzed by FuzzRestoreState): the decoded
// sequence must contain no Inf or negative counts (NaN is the missing
// sentinel and fine), and a fitted snapshot must materialise a model that
// passes the same validation Put applies.
func decodeStreamState(data []byte) (core.StreamState, int, error) {
	var sj streamJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return core.StreamState{}, 0, err
	}
	mode, ok := core.ParseRefitMode(sj.Mode)
	if !ok {
		return core.StreamState{}, 0, fmt.Errorf("unknown stream mode %q", sj.Mode)
	}
	state := core.StreamState{
		RefitEvery: sj.RefitEvery,
		Seq:        decodeSeq(sj.Seq),
		Fitted:     sj.Fitted,
		SinceRefit: sj.SinceRefit,
		Mode:       mode,
		TailWindow: sj.TailWindow,
		DebtLimit:  sj.DebtLimit,
		Debt:       sj.Debt,
		Failures:   sj.Failures,
		CoolOff:    sj.CoolOff,
		LastScan:   -1,
		Future:     decodeSeq(sj.Future),
		Retention:  sj.Retention,
		Evicted:    sj.Evicted,
		Dropped:    sj.Dropped,
		GapFilled:  sj.GapFilled,
		Deferred:   sj.Deferred,
	}
	if sj.LastScan != nil && *sj.LastScan >= 0 {
		state.LastScan = *sj.LastScan
	}
	if len(sj.Future) == 0 {
		state.Future = nil
	}
	if err := numcheck.Sequence("stream snapshot", state.Seq); err != nil {
		return core.StreamState{}, 0, err
	}
	if sj.Result != nil {
		state.Result = *sj.Result
	}
	if state.Fitted {
		if err := validateStreamState(&state); err != nil {
			return core.StreamState{}, 0, err
		}
	}
	return state, sj.Refits, nil
}

// loadStreams restores every snapshot under streams/. A corrupt or invalid
// snapshot is quarantined as <file>.corrupt and skipped — one bad stream
// must not block the boot, but leaving the bad file in place would re-fail
// (and previously silently re-skip) on every restart.
func (r *Registry) loadStreams() error {
	entries, err := r.fs.ReadDir(filepath.Join(r.dir, streamsDir))
	if err != nil {
		return fmt.Errorf("registry: scanning streams: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		path := filepath.Join(r.dir, streamsDir, name)
		if err := ValidateID(id); err != nil {
			r.quarantine(path, "stream", id, err)
			continue
		}
		data, err := r.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("registry: reading stream %q: %w", id, err)
		}
		state, refits, err := decodeStreamState(data)
		if err != nil {
			r.quarantine(path, "stream", id, err)
			continue
		}
		s := core.RestoreStream(r.opts.StreamFit, state)
		r.configureStream(id, s)
		r.streams[id] = &stream{id: id, s: s, refits: refits}
	}
	r.opts.Metrics.setStreams(len(r.streams))
	return nil
}

// validateStreamState sanity-checks a fitted snapshot by materialising its
// model through the same validation Put applies.
func validateStreamState(state *core.StreamState) error {
	probe := core.RestoreStream(core.FitOptions{}, *state)
	m := probe.Model()
	if m == nil {
		return errors.New("fitted snapshot has no model")
	}
	return m.Validate()
}

// encodeSeq maps missing ticks to JSON null.
func encodeSeq(seq []float64) []*float64 {
	out := make([]*float64, len(seq))
	for i, v := range seq {
		if tensor.IsMissing(v) {
			continue
		}
		v := v
		out[i] = &v
	}
	return out
}

// decodeSeq maps JSON null back to the missing sentinel.
func decodeSeq(seq []*float64) []float64 {
	out := make([]float64, len(seq))
	for i, p := range seq {
		if p == nil {
			out[i] = tensor.Missing
			continue
		}
		out[i] = *p
	}
	return out
}
