package registry

import (
	"hash/fnv"

	"dspot/internal/core"
)

// Refit desynchronisation: a fleet of streams created (or restored) at the
// same moment accrues refit debt in lockstep, so without intervention their
// consolidating batch refits all fire on the same append wave and stampede
// the fitters. The registry breaks the lockstep twice over — each stream
// gets a deterministic per-id jitter on its refit trigger, and every
// debt/cadence-scheduled refit must win a slot on a shared semaphore gate
// (losers defer and retry on their next append, keeping their accrued
// debt). Forced refits (RefitStream → core.RefitNow) bypass the gate:
// explicit operator intent outranks the scheduler.

// DefaultMaxConcurrentRefits bounds scheduler-admitted full refits when
// Options.MaxConcurrentRefits is zero.
const DefaultMaxConcurrentRefits = 2

// semGate is the built-in RefitGate: a non-blocking counting semaphore.
type semGate struct{ slots chan struct{} }

func newSemGate(n int) *semGate {
	if n <= 0 {
		n = DefaultMaxConcurrentRefits
	}
	return &semGate{slots: make(chan struct{}, n)}
}

func (g *semGate) TryAcquire() (func(), bool) {
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, true
	default:
		return nil, false
	}
}

// jitterFor derives a stream's trigger-jitter fraction in [0,1) from its id
// (FNV-1a), so the stagger is stable across restarts without persisting
// anything.
func jitterFor(id string) float64 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return float64(h.Sum32()%1000) / 1000
}

// configureStream applies the registry's runtime stream policy — retention
// horizon, refit gate, trigger jitter — to a new or freshly restored
// stream. A retention horizon already persisted on the stream wins over the
// registry default.
func (r *Registry) configureStream(id string, s *core.Stream) {
	if s.Retention() == 0 && r.opts.StreamRetention > 0 {
		s.SetRetention(r.opts.StreamRetention)
	}
	s.SetRefitGate(r.refitGate)
	s.SetRefitJitter(jitterFor(id))
}
