package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"dspot/internal/core"
)

// trackingGate wraps a RefitGate and records peak concurrency and denials.
type trackingGate struct {
	inner core.RefitGate

	mu     sync.Mutex
	cur    int
	peak   int
	denied int
	admits int
}

func (g *trackingGate) TryAcquire() (func(), bool) {
	release, ok := g.inner.TryAcquire()
	g.mu.Lock()
	defer g.mu.Unlock()
	if !ok {
		g.denied++
		return nil, false
	}
	g.admits++
	g.cur++
	if g.cur > g.peak {
		g.peak = g.cur
	}
	return func() {
		g.mu.Lock()
		g.cur--
		g.mu.Unlock()
		release()
	}, true
}

// TestRefitStampedeBounded is the desynchronisation acceptance test: 100
// streams fed the same series in lockstep — the worst case, every debt
// counter crossing its limit on the same append wave — must never run more
// concurrent consolidating refits than the scheduler cap admits.
func TestRefitStampedeBounded(t *testing.T) {
	const nStreams, cap = 100, 2
	gate := &trackingGate{inner: newSemGate(cap)}
	r, err := Open(Options{
		StreamFit: core.FitOptions{DisableGrowth: true, Workers: 1, MaxShocks: 3},
		RefitGate: gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	series := streamSeries(120)
	var wg sync.WaitGroup
	errs := make(chan error, nStreams)
	for i := 0; i < nStreams; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for lo := 0; lo < len(series); lo += 10 {
				hi := lo + 10
				if hi > len(series) {
					hi = len(series)
				}
				if _, err := r.AppendStream(context.Background(), id, series[lo:hi],
					AppendOptions{RefitEvery: 30}); err != nil {
					errs <- fmt.Errorf("stream %s: %w", id, err)
					return
				}
			}
		}(fmt.Sprintf("s-%03d", i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if gate.peak > cap {
		t.Fatalf("refit stampede: %d concurrent refits, scheduler cap is %d", gate.peak, cap)
	}
	if gate.admits == 0 {
		t.Fatal("no refit was ever admitted")
	}
	if gate.denied == 0 {
		t.Fatal("100 synchronised streams against a cap of 2 should deny some refits")
	}

	// Deferred streams keep their debt and retry as ticks keep arriving —
	// model the continuing feed with further waves until the fleet drains.
	extra := streamSeries(10)
	for wave := 0; wave < 200; wave++ {
		ready := 0
		for _, st := range r.ListStreams() {
			if st.Ready {
				ready++
				continue
			}
			if _, err := r.AppendStream(context.Background(), st.ID, extra,
				AppendOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		if ready == nStreams {
			break
		}
	}
	ready, deferred := 0, int64(0)
	for _, st := range r.ListStreams() {
		if st.Ready {
			ready++
		}
		deferred += st.Deferred
	}
	t.Logf("peak concurrency %d, %d admits, %d denials, %d/%d ready, %d deferrals",
		gate.peak, gate.admits, gate.denied, ready, nStreams, deferred)
	if ready != nStreams {
		t.Fatalf("only %d/%d streams fitted — the gate starved the fleet", ready, nStreams)
	}
	if deferred == 0 {
		t.Fatal("gate denials not reflected in stream deferral counters")
	}
	if gate.peak > cap {
		t.Fatalf("recovery waves exceeded the cap: peak %d", gate.peak)
	}
}

// TestBoundedStreamPersistRestore proves the eviction state survives a
// restart: a stream bounded by the registry-wide retention default evicts
// while appending, its snapshot round-trips through disk, and the restored
// stream reports the same absolute head and forecasts identically.
func TestBoundedStreamPersistRestore(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		DataDir:         dir,
		StreamFit:       core.FitOptions{DisableGrowth: true, Workers: 1, MaxShocks: 3},
		StreamMode:      "incremental",
		StreamRetention: 64,
	}
	r1, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	series := streamSeries(400)
	var st StreamStatus
	for lo := 0; lo < len(series); lo += 40 {
		if st, err = r1.AppendStream(context.Background(), "b", series[lo:lo+40], AppendOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if st.Evicted == 0 || st.Retention != 64 {
		t.Fatalf("bounded stream never evicted: %+v", st)
	}
	if st.Head != int64(len(series)) || st.Len > 64+64/8 {
		t.Fatalf("head/len wrong after eviction: %+v", st)
	}
	fc1, err := r1.StreamForecast("b", 26)
	if err != nil {
		t.Fatal(err)
	}

	r2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := r2.StreamStatusFor("b")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Head != st.Head || st2.Evicted != st.Evicted || st2.Retention != st.Retention ||
		st2.Len != st.Len || st2.Dropped != st.Dropped {
		t.Fatalf("eviction state did not survive the restart:\nbefore %+v\nafter  %+v", st, st2)
	}
	fc2, err := r2.StreamForecast("b", 26)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fc1 {
		if fc1[i] != fc2[i] {
			t.Fatalf("forecast diverged at h=%d: %v != %v", i, fc1[i], fc2[i])
		}
	}
	// And the restored stream keeps accepting (positioned) appends.
	if _, err := r2.AppendStream(context.Background(), "b", []float64{1, 2},
		AppendOptions{At: st2.Head, AtSet: true}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendStreamPositioned covers the registry mapping of positioned
// appends: duplicate replays drop idempotently with the drop reported in
// the status, and an oversized gap maps to ErrBadRequest (an HTTP 400), not
// an internal error.
func TestAppendStreamPositioned(t *testing.T) {
	r, err := Open(Options{StreamFit: core.FitOptions{DisableGrowth: true, Workers: 1, MaxShocks: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.AppendStream(ctx, "p", []float64{1, 2, 3}, AppendOptions{RefitEvery: 1000}); err != nil {
		t.Fatal(err)
	}
	st, err := r.AppendStream(ctx, "p", []float64{1, 2, 3}, AppendOptions{At: 0, AtSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len != 3 || st.Dropped != 3 || st.Head != 3 {
		t.Fatalf("replay not dropped idempotently: %+v", st)
	}
	st, err = r.AppendStream(ctx, "p", []float64{4}, AppendOptions{At: 5, AtSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len != 6 || st.GapFilled != 2 {
		t.Fatalf("gap not bridged: %+v", st)
	}
	_, err = r.AppendStream(ctx, "p", []float64{9}, AppendOptions{At: 1 << 40, AtSet: true})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized gap: err = %v, want ErrBadRequest", err)
	}
}
