package registry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dspot/internal/core"
	"dspot/internal/faultfs"
	"dspot/internal/obs"
)

// reopenClean reopens dir with the real filesystem and fresh metrics, and
// asserts the durability invariant: the boot succeeds, nothing needs
// quarantining, and every model the manifest promises actually loads.
func reopenClean(t *testing.T, dir string) (*Registry, *Metrics) {
	t.Helper()
	met := NewMetricsOn(obs.NewRegistry())
	r, err := Open(Options{DataDir: dir, Metrics: met})
	if err != nil {
		t.Fatalf("clean reopen failed: %v", err)
	}
	if got := met.corrupt.Value(); got != 0 {
		t.Fatalf("clean reopen quarantined %v files; boot state was half-visible", got)
	}
	for _, info := range r.List() {
		if _, err := r.Get(info.ID); err != nil {
			t.Fatalf("manifest promises %q but Get failed: %v", info.ID, err)
		}
	}
	return r, met
}

// countPutOps measures how many filesystem operations one persisted Put
// performs, so the fault sweep can schedule a fault at every position.
func countPutOps(t *testing.T) int {
	t.Helper()
	in := faultfs.NewInjector(nil)
	r, err := Open(Options{DataDir: t.TempDir(), FS: in})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("probe", testModel(1)); err != nil {
		t.Fatal(err)
	}
	in.Reset()
	if _, err := r.Put("probe", testModel(2)); err != nil {
		t.Fatal(err)
	}
	n := in.Count(faultfs.OpAny)
	for _, op := range []string{faultfs.OpCreate, faultfs.OpWrite, faultfs.OpSync,
		faultfs.OpClose, faultfs.OpRename, faultfs.OpRemove, faultfs.OpRead,
		faultfs.OpReadDir, faultfs.OpStat, faultfs.OpMkdir, faultfs.OpSyncDir} {
		n += in.Count(op)
	}
	return n
}

// TestChaosPutFaultSweep injects a fault at every filesystem operation a
// persisted Put performs, one position per iteration, and proves the
// protocol's crash contract: the pre-existing model survives intact, and
// the model whose Put faulted is afterwards either fully present or fully
// absent — never a torn file, never a manifest entry pointing at garbage.
func TestChaosPutFaultSweep(t *testing.T) {
	ops := countPutOps(t)
	if ops < 6 {
		t.Fatalf("a persisted Put performed only %d fs ops; sweep would be vacuous", ops)
	}
	for k := 1; k <= ops; k++ {
		for _, short := range []bool{false, true} {
			t.Run(fmt.Sprintf("op%d_short=%v", k, short), func(t *testing.T) {
				dir := t.TempDir()
				in := faultfs.NewInjector(nil)
				r, err := Open(Options{DataDir: dir, FS: in})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := r.Put("stable", testModel(7)); err != nil {
					t.Fatal(err)
				}
				if short {
					in.ShortWriteNth(k) // only faults if the kth write exists
				} else {
					in.FailNth(faultfs.OpAny, k, nil)
				}
				_, putErr := r.Put("victim", testModel(9))

				r2, _ := reopenClean(t, dir)
				m, err := r2.Get("stable")
				if err != nil {
					t.Fatalf("pre-existing model lost after faulted Put: %v", err)
				}
				if coreOf(t, m).Global[0].N != 8 {
					t.Fatalf("pre-existing model content changed: N = %v", coreOf(t, m).Global[0].N)
				}
				if putErr == nil {
					// The fault missed (e.g. short-write rule on a non-write
					// op position) or hit a tolerated op; victim must be whole.
					if _, err := r2.Get("victim"); err != nil {
						t.Fatalf("Put reported success but model unreadable: %v", err)
					}
				} else if _, err := r2.Get("victim"); err == nil {
					// Present is fine too (fault after the point of
					// durability, e.g. on the final directory sync) — but
					// then it must be the *new* content, verified by Get's
					// checksum path inside reopenClean.
					m, _ := r2.Get("victim")
					if m == nil || coreOf(t, m).Global[0].N != 10 {
						t.Fatalf("half-written victim visible after fault at op %d", k)
					}
				}
			})
		}
	}
}

// TestChaosOverwritePutFaultSweep is TestChaosPutFaultSweep for the
// *overwriting* Put: a model that already has a committed version is Put
// again with a fault injected at every filesystem operation. The crash
// contract here is stricter than fresh-id survival — the previously
// acknowledged version must never be destroyed, so after reboot the model
// is always present with either the old or the new content. (This is the
// case a shared-filename protocol loses: renaming new bytes over the old
// file before the manifest commits leaves a checksum mismatch that
// quarantines the only copy.)
func TestChaosOverwritePutFaultSweep(t *testing.T) {
	ops := countPutOps(t)
	for k := 1; k <= ops; k++ {
		for _, short := range []bool{false, true} {
			t.Run(fmt.Sprintf("op%d_short=%v", k, short), func(t *testing.T) {
				dir := t.TempDir()
				in := faultfs.NewInjector(nil)
				r, err := Open(Options{DataDir: dir, FS: in})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := r.Put("m", testModel(7)); err != nil {
					t.Fatal(err)
				}
				in.Reset()
				if short {
					in.ShortWriteNth(k)
				} else {
					in.FailNth(faultfs.OpAny, k, nil)
				}
				_, putErr := r.Put("m", testModel(9))

				r2, _ := reopenClean(t, dir)
				m, err := r2.Get("m")
				if err != nil {
					t.Fatalf("acknowledged model lost after faulted overwrite at op %d: %v", k, err)
				}
				n := coreOf(t, m).Global[0].N
				if n != 8 && n != 10 {
					t.Fatalf("model content is neither old nor new after fault at op %d: N = %v", k, n)
				}
				if putErr == nil && n != 10 {
					t.Fatalf("Put reported success but old content served: N = %v", n)
				}
			})
		}
	}
}

// TestLegacyModelFileLayoutMigrates covers directories written before
// versioned model files: a manifest entry pointing at models/<id>.json
// loads as-is, and the next Put migrates it to a versioned file and
// removes the legacy one.
func TestLegacyModelFileLayoutMigrates(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("old", testModel(2)); err != nil {
		t.Fatal(err)
	}
	// Rewrite the layout the way a legacy binary left it: bytes at
	// models/old.json, manifest pointing there.
	versioned := modelDiskPath(t, dir, "old")
	legacy := filepath.Join(dir, "models", "old.json")
	if err := os.Rename(versioned, legacy); err != nil {
		t.Fatal(err)
	}
	mfPath := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(mfPath)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := decodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	mf.Models[0].File = "models/old.json"
	rewritten, err := encodeManifest(mf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mfPath, rewritten, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, _ := reopenClean(t, dir)
	if _, err := r2.Get("old"); err != nil {
		t.Fatalf("legacy layout rejected: %v", err)
	}
	if _, err := r2.Put("old", testModel(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(legacy); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("legacy file not removed after migrating Put: %v", err)
	}
	r3, _ := reopenClean(t, dir)
	m, err := r3.Get("old")
	if err != nil {
		t.Fatal(err)
	}
	if coreOf(t, m).Global[0].N != 6 {
		t.Fatalf("migrated model content N = %v, want 6", coreOf(t, m).Global[0].N)
	}
}

// TestChaosCorruptModelQuarantinedOnBoot flips bytes in a persisted model
// file and reboots: the checksum catches it, the file is quarantined as
// .corrupt, the counter fires, and the manifest is rewritten so the ghost
// does not return on the next boot.
func TestChaosCorruptModelQuarantinedOnBoot(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"good", "bad"} {
		if _, err := r.Put(id, testModel(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	path := modelDiskPath(t, dir, "bad")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	met := NewMetricsOn(obs.NewRegistry())
	r2, err := Open(Options{DataDir: dir, Metrics: met})
	if err != nil {
		t.Fatalf("corrupt model file blocked boot: %v", err)
	}
	if got := met.corrupt.Value(); got != 1 {
		t.Fatalf("registry_corrupt_total = %v, want 1", got)
	}
	if _, err := r2.Get("bad"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt model still served: %v", err)
	}
	if _, err := r2.Get("good"); err != nil {
		t.Fatalf("healthy sibling lost: %v", err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt file not preserved for post-mortem: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt file left in place: %v", err)
	}
	// Third boot: the rewritten manifest no longer lists the ghost, so
	// nothing is re-quarantined.
	reopenClean(t, dir)
}

// TestChaosMissingModelFileDropped deletes a model file out from under the
// manifest and reboots.
func TestChaosMissingModelFileDropped(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("gone", testModel(3)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(modelDiskPath(t, dir, "gone")); err != nil {
		t.Fatal(err)
	}
	met := NewMetricsOn(obs.NewRegistry())
	r2, err := Open(Options{DataDir: dir, Metrics: met})
	if err != nil {
		t.Fatalf("missing model file blocked boot: %v", err)
	}
	if met.corrupt.Value() != 1 {
		t.Fatalf("registry_corrupt_total = %v, want 1", met.corrupt.Value())
	}
	if r2.Len() != 0 {
		t.Fatalf("ghost entry survived: %v", r2.List())
	}
	reopenClean(t, dir)
}

// TestChaosGetQuarantinesTamperedModel tampers with a model file while its
// entry is evicted from memory; the lazy reload's checksum catches it.
func TestChaosGetQuarantinesTamperedModel(t *testing.T) {
	dir := t.TempDir()
	met := NewMetricsOn(obs.NewRegistry())
	r, err := Open(Options{DataDir: dir, MaxLoaded: 1, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("a", testModel(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("b", testModel(2)); err != nil { // evicts a
		t.Fatal(err)
	}
	info, err := r.Stat("a")
	if err != nil || info.Loaded {
		t.Fatalf("expected a evicted, got %+v, %v", info, err)
	}
	path := modelDiskPath(t, dir, "a")
	if err := os.WriteFile(path, []byte(`{"tampered":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tampered model served: %v", err)
	}
	if met.corrupt.Value() != 1 {
		t.Fatalf("registry_corrupt_total = %v, want 1", met.corrupt.Value())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("tampered file not quarantined: %v", err)
	}
	// The quarantine rewrote the manifest: a clean reopen sees only b.
	r2, _ := reopenClean(t, dir)
	if r2.Len() != 1 {
		t.Fatalf("reopen models = %v, want only b", r2.List())
	}
}

// TestChaosStreamSnapshotFaults faults every operation of a stream
// snapshot write: the append itself must survive in memory (the fit is not
// lost), the caller sees the persistence error, and a clean reopen finds
// either the previous snapshot or none — never a torn one.
func TestChaosStreamSnapshotFaults(t *testing.T) {
	series := streamSeries(80)
	fit := core.FitOptions{DisableGrowth: true, Workers: 1, MaxShocks: 3}
	for k := 1; k <= 6; k++ {
		t.Run(fmt.Sprintf("op%d", k), func(t *testing.T) {
			dir := t.TempDir()
			in := faultfs.NewInjector(nil)
			r, err := Open(Options{DataDir: dir, FS: in, StreamFit: fit})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.AppendStream(context.Background(), "s", series[:60], AppendOptions{RefitEvery: 30}); err != nil {
				t.Fatal(err)
			}
			in.FailNth(faultfs.OpAny, k, nil)
			st, appendErr := r.AppendStream(context.Background(), "s", series[60:], AppendOptions{})
			if appendErr != nil && !errors.Is(appendErr, faultfs.ErrInjected) {
				t.Fatalf("append error is not the injected fault: %v", appendErr)
			}
			if appendErr != nil && st.Len != 80 {
				t.Fatalf("persistence fault lost in-memory ticks: %+v", st)
			}

			r2, _ := reopenClean(t, dir)
			got, err := r2.StreamStatusFor("s")
			if err != nil {
				if !errors.Is(err, ErrNotFound) {
					t.Fatal(err)
				}
				return // no snapshot survived; acceptable, never torn
			}
			if got.Len != 60 && got.Len != 80 {
				t.Fatalf("reopened stream len = %d, want 60 (old) or 80 (new)", got.Len)
			}
			// Whatever snapshot survived must keep accepting appends.
			if _, err := r2.AppendStream(context.Background(), "s", []float64{1, 2}, AppendOptions{}); err != nil {
				t.Fatalf("surviving snapshot rejects appends: %v", err)
			}
		})
	}
}

// TestChaosCorruptStreamQuarantined proves the boot-time stream scan moves
// bad snapshots aside instead of silently re-skipping them forever.
func TestChaosCorruptStreamQuarantined(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AppendStream(context.Background(), "ok", []float64{1, 2, 3}, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "streams", "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	inf := filepath.Join(dir, "streams", "infinite.json")
	if err := os.WriteFile(inf, []byte(`{"refit_every":10,"seq":[1e999,2]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	met := NewMetricsOn(obs.NewRegistry())
	r2, err := Open(Options{DataDir: dir, Metrics: met})
	if err != nil {
		t.Fatalf("corrupt snapshots blocked boot: %v", err)
	}
	if got := r2.ListStreams(); len(got) != 1 || got[0].ID != "ok" {
		t.Fatalf("streams after boot = %+v", got)
	}
	if met.corrupt.Value() != 2 {
		t.Fatalf("registry_corrupt_total = %v, want 2", met.corrupt.Value())
	}
	for _, p := range []string{bad, inf} {
		if _, err := os.Stat(p + ".corrupt"); err != nil {
			t.Fatalf("%s not quarantined: %v", p, err)
		}
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s left in place", p)
		}
	}
	// The quarantine is not re-reported on the next boot.
	_, met3 := reopenClean(t, dir)
	if met3.corrupt.Value() != 0 {
		t.Fatalf("quarantine re-fired on clean boot: %v", met3.corrupt.Value())
	}
}

// TestChaosStrayTempFilesIgnored seeds the data dir with leftover temp
// files — what a hard crash mid-protocol leaves behind — and checks the
// boot neither trips over them nor serves them.
func TestChaosStrayTempFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("real", testModel(1)); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		filepath.Join(dir, "manifest.json.tmp-123"),
		filepath.Join(dir, "models", "real.json.tmp-456"),
		filepath.Join(dir, "streams", "s.json.tmp-789"),
	} {
		if err := os.WriteFile(p, []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r2, met := reopenClean(t, dir)
	if r2.Len() != 1 {
		t.Fatalf("models after boot = %v", r2.List())
	}
	if met.corrupt.Value() != 0 {
		t.Fatalf("stray temp files counted as corruption: %v", met.corrupt.Value())
	}
}

// TestWriteFileAtomicCleansUp verifies the failure branches of the write
// protocol remove their temp file instead of littering the data dir.
func TestWriteFileAtomicCleansUp(t *testing.T) {
	for k := 1; k <= 4; k++ { // create, write, sync, close
		dir := t.TempDir()
		in := faultfs.NewInjector(nil)
		in.FailNth(faultfs.OpAny, k, nil)
		err := writeFileAtomic(in, filepath.Join(dir, "f.json"), []byte("data"))
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("op %d: err = %v, want injected", k, err)
		}
		des, rerr := os.ReadDir(dir)
		if rerr != nil {
			t.Fatal(rerr)
		}
		for _, de := range des {
			if strings.Contains(de.Name(), ".tmp-") {
				t.Fatalf("op %d: temp file %q left behind", k, de.Name())
			}
		}
	}
}

// TestChaosManifestChecksumRoundTrip asserts Put records a checksum that
// matches the bytes on disk, byte for byte.
func TestChaosManifestChecksumRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("m", testModel(4)); err != nil {
		t.Fatal(err)
	}
	mfData, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(mfData, []byte(`"checksum": "crc32:`)) {
		t.Fatalf("manifest lacks checksum: %s", mfData)
	}
	mf, err := decodeManifest(mfData)
	if err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(modelDiskPath(t, dir, "m"))
	if err != nil {
		t.Fatal(err)
	}
	if got := checksumOf(body); got != mf.Models[0].Checksum {
		t.Fatalf("manifest checksum %s, file hashes to %s", mf.Models[0].Checksum, got)
	}
}

// TestLegacyManifestWithoutChecksumsLoads covers directories written before
// checksums existed: empty checksum means "unverified", not "invalid".
func TestLegacyManifestWithoutChecksumsLoads(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("old", testModel(2)); err != nil {
		t.Fatal(err)
	}
	// Strip the checksum the way a legacy binary would have written it.
	mfPath := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(mfPath)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := decodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	mf.Models[0].Checksum = ""
	stripped, err := encodeManifest(mf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mfPath, stripped, 0o644); err != nil {
		t.Fatal(err)
	}
	r2, met := reopenClean(t, dir)
	if _, err := r2.Get("old"); err != nil {
		t.Fatalf("legacy entry rejected: %v", err)
	}
	if met.corrupt.Value() != 0 {
		t.Fatalf("legacy entry counted corrupt: %v", met.corrupt.Value())
	}
	_ = r
}

// TestChaosStreamRefitFaults appends through injected refit faults: a
// poisoned Progress hook makes every full refit panic inside the fitter.
// The appended ticks must survive in memory, the last good fit must keep
// serving, the retry backoff must keep the error rate far below one per
// append, and persistence must round-trip the backoff state so a restart
// does not reset the schedule. Healing the fault lets a forced refit
// succeed and clear the backoff.
func TestChaosStreamRefitFaults(t *testing.T) {
	poisoned := false
	fit := core.FitOptions{DisableGrowth: true, Workers: 1, MaxShocks: 3,
		Progress: func(core.FitEvent) {
			if poisoned {
				panic("injected refit fault")
			}
		}}
	dir := t.TempDir()
	r, err := Open(Options{DataDir: dir, StreamFit: fit})
	if err != nil {
		t.Fatal(err)
	}
	series := streamSeries(160)
	if _, err := r.AppendStream(context.Background(), "s", series[:60], AppendOptions{RefitEvery: 10}); err != nil {
		t.Fatal(err)
	}
	seeded, err := r.StreamStatusFor("s")
	if err != nil {
		t.Fatal(err)
	}

	poisoned = true
	errs := 0
	for _, v := range series[60:120] {
		st, err := r.AppendStream(context.Background(), "s", []float64{v}, AppendOptions{})
		if err != nil {
			errs++
			continue
		}
		if !st.Ready {
			t.Fatalf("faulted stream lost its last good fit: %+v", st)
		}
	}
	if errs == 0 {
		t.Fatal("poisoned refits never surfaced an error")
	}
	if errs > 4 {
		t.Fatalf("backoff ineffective: %d refit errors over 60 appends", errs)
	}
	st, err := r.StreamStatusFor("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Len != 120 {
		t.Fatalf("faulted refits lost ticks: %+v", st)
	}
	// No refit succeeded, yet the stream still serves the last good fit.
	if st.Refits != seeded.Refits || !st.Ready {
		t.Fatalf("faulted stream state = %+v, want last good fit intact (refits %d)", st, seeded.Refits)
	}
	if fc, err := r.StreamForecast("s", 10); err != nil || len(fc) != 10 {
		t.Fatalf("faulted stream stopped forecasting: %v, %v", fc, err)
	}

	// Restart mid-backoff: the snapshot carries the retry schedule.
	r2, err := Open(Options{DataDir: dir, StreamFit: fit})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := r2.StreamStatusFor("s")
	if err != nil {
		t.Fatal(err)
	}
	if st2.RetryIn != st.RetryIn {
		t.Fatalf("backoff state lost across restart: %d != %d", st2.RetryIn, st.RetryIn)
	}

	// Heal the fault: a forced refit succeeds and clears the backoff.
	poisoned = false
	st3, err := r2.RefitStream(context.Background(), "s")
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Refitted || st3.RetryIn != 0 {
		t.Fatalf("healed refit status = %+v, want refitted with no backoff", st3)
	}
}
