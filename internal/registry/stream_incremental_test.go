package registry

import (
	"context"
	"errors"
	"testing"

	"dspot/internal/core"
)

// TestAppendStreamHonorsCadenceAndMode pins the AppendStream configuration
// contract: a positive refit_every is honored on EXISTING streams (it used
// to apply only at creation), a mode switch takes effect in place, both are
// reported in StreamStatus, and an unknown mode is rejected up front.
func TestAppendStreamHonorsCadenceAndMode(t *testing.T) {
	r, err := Open(Options{StreamFit: core.FitOptions{DisableGrowth: true, Workers: 1, MaxShocks: 3}})
	if err != nil {
		t.Fatal(err)
	}
	series := streamSeries(120)
	st, err := r.AppendStream(context.Background(), "s", series[:60], AppendOptions{RefitEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	if st.RefitEvery != 30 || st.Mode != "batch" {
		t.Fatalf("creation status = %+v, want refit_every 30 mode batch", st)
	}

	st, err = r.AppendStream(context.Background(), "s", series[60:70], AppendOptions{RefitEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	if st.RefitEvery != 7 {
		t.Fatalf("refit_every change on existing stream ignored: %+v", st)
	}

	st, err = r.AppendStream(context.Background(), "s", series[70:80], AppendOptions{Mode: "incremental"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "incremental" || st.RefitEvery != 7 {
		t.Fatalf("mode switch on existing stream ignored: %+v", st)
	}
	if st.DebtLimit <= 0 {
		t.Fatalf("incremental status should expose the debt limit: %+v", st)
	}

	if _, err := r.AppendStream(context.Background(), "s", series[80:81], AppendOptions{Mode: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown mode accepted: %v", err)
	}
}

// TestIncrementalStreamPersistRestore proves an incremental stream's
// snapshot round-trips through disk: the mode, pending refit debt and the
// projected shock strengths all survive a restart, and the restored stream
// forecasts identically.
func TestIncrementalStreamPersistRestore(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir,
		StreamFit:         core.FitOptions{DisableGrowth: true, Workers: 1, MaxShocks: 3},
		StreamMode:        "incremental",
		StreamIncremental: core.IncrementalConfig{TailWindow: 26, DebtLimit: 1e9}}
	r, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	series := streamSeries(160)
	if _, err := r.AppendStream(context.Background(), "inc", series[:100], AppendOptions{RefitEvery: 30}); err != nil {
		t.Fatal(err)
	}
	st, err := r.AppendStream(context.Background(), "inc", series[100:140], AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "incremental" || !st.Ready {
		t.Fatalf("status = %+v, want ready incremental", st)
	}
	if st.Debt <= 0 {
		t.Fatalf("incremental appends past the fit should accrue debt: %+v", st)
	}
	fc, err := r.StreamForecast("inc", 20)
	if err != nil {
		t.Fatal(err)
	}

	r2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := r2.StreamStatusFor("inc")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Mode != st.Mode || st2.Debt != st.Debt || st2.Len != st.Len || st2.RefitEvery != st.RefitEvery {
		t.Fatalf("restored status %+v != live %+v", st2, st)
	}
	fc2, err := r2.StreamForecast("inc", 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fc {
		if fc[i] != fc2[i] {
			t.Fatalf("incremental forecast diverges after restart at %d: %v != %v", i, fc[i], fc2[i])
		}
	}
	// The restored stream keeps maintaining incrementally.
	st3, err := r2.AppendStream(context.Background(), "inc", series[140:], AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Len != 160 || st3.Mode != "incremental" {
		t.Fatalf("post-restart append status = %+v", st3)
	}
}

// TestLegacyStreamSnapshotDecodes pins back-compat: snapshots written before
// incremental maintenance existed carry none of the new fields and must
// decode to a plain batch stream with no pending debt.
func TestLegacyStreamSnapshotDecodes(t *testing.T) {
	legacy := []byte(`{"refit_every":30,"seq":[1,2,null,3],"fitted":false,"since_refit":4,"refits":0}`)
	state, refits, err := decodeStreamState(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if refits != 0 || state.RefitEvery != 30 || len(state.Seq) != 4 {
		t.Fatalf("legacy decode: refits=%d state=%+v", refits, state)
	}
	if state.Mode != core.RefitBatch || state.Debt != 0 || state.Future != nil {
		t.Fatalf("legacy snapshot must restore as a clean batch stream: %+v", state)
	}
	if state.LastScan != -1 {
		t.Fatalf("legacy snapshot LastScan = %d, want -1 (no peak examined)", state.LastScan)
	}
	s := core.RestoreStream(core.FitOptions{}, state)
	if s.Mode() != core.RefitBatch || s.Len() != 4 {
		t.Fatalf("restored legacy stream: mode %v len %d", s.Mode(), s.Len())
	}
}

// TestStreamRefitOnDemand covers the forced-consolidation endpoint's
// registry half: RefitStream fires a full refit regardless of pending debt
// and clears it.
func TestStreamRefitOnDemand(t *testing.T) {
	r, err := Open(Options{
		StreamFit:         core.FitOptions{DisableGrowth: true, Workers: 1, MaxShocks: 3},
		StreamMode:        "incremental",
		StreamIncremental: core.IncrementalConfig{TailWindow: 26, DebtLimit: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	series := streamSeries(140)
	if _, err := r.AppendStream(context.Background(), "s", series[:100], AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	st, err := r.AppendStream(context.Background(), "s", series[100:], AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Debt <= 0 {
		t.Fatalf("scenario should carry pending debt, got %+v", st)
	}
	st, err = r.RefitStream(context.Background(), "s")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Refitted || st.Debt != 0 {
		t.Fatalf("on-demand refit status = %+v, want refitted with debt 0", st)
	}
	if _, err := r.RefitStream(context.Background(), "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown stream refit = %v", err)
	}
}
