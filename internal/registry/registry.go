// Package registry is the stateful heart of the serving layer: a versioned
// store of fitted models plus named incremental streams, shared by every
// request instead of round-tripping model JSON through clients.
//
// Models are engine-typed (engine.Model): each entry records which engine
// produced it, persistence delegates to that engine's Encode/DecodeModel,
// and manifest entries written before the engine subsystem existed load as
// the default Δ-SPOT engine, so old data directories keep working.
//
// Models live in an in-memory map guarded by a mutex, with an LRU bound on
// how many stay loaded. When a data directory is configured every Put is
// persisted atomically (model JSON written temp-then-rename, then a small
// manifest indexing all models), so a restarted server reopens the
// directory and serves the same models; evicted models reload from disk on
// demand. Streams wrap core.Stream: clients append ticks and the registry
// refits incrementally, snapshotting the stream state after every append.
//
// Concurrency contract: engine.Model values returned by Get are shared and
// must be treated as read-only (every Model method used for serving is).
// Stream appends serialise per stream but run concurrently across streams
// and never hold the registry lock during a fit.
package registry

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dspot/internal/core"
	"dspot/internal/engine"
	"dspot/internal/faultfs"
	"dspot/internal/obs/trace"
)

// Registry errors recognised by callers (the HTTP layer maps them to
// status codes).
var (
	ErrNotFound   = errors.New("registry: not found")
	ErrBadID      = errors.New("registry: bad id")
	ErrBadRequest = errors.New("registry: bad request")
)

// DefaultMaxLoaded bounds in-memory models when Options.MaxLoaded is 0.
const DefaultMaxLoaded = 64

// Options configures Open.
type Options struct {
	// DataDir is the persistence root ("" keeps everything in memory; the
	// LRU bound is then ignored, since evicting would lose data).
	DataDir string
	// MaxLoaded bounds models held in memory at once (default
	// DefaultMaxLoaded). Only effective with a DataDir.
	MaxLoaded int
	// Logger, when non-nil, reports loads, evictions and persistence
	// problems.
	Logger *slog.Logger
	// Metrics, when non-nil, exports registry gauges and counters.
	Metrics *Metrics
	// Tracer, when non-nil, records a span per stream append (covering the
	// append, any triggered refit, and the persistence write) under the
	// caller's span.
	Tracer *trace.Tracer
	// StreamFit are the fitting options applied to stream (re)fits.
	StreamFit core.FitOptions
	// RefitEvery is the default stream refit cadence in ticks (0 selects
	// core.NewStream's default).
	RefitEvery int
	// StreamMode is the default maintenance mode for new streams:
	// "incremental" for O(tail) per-tick maintenance, anything else (and "")
	// for classic batch refits. Per-append options override it.
	StreamMode string
	// StreamIncremental tunes incremental maintenance (tail window, debt
	// limit) for streams created in incremental mode; zero fields select the
	// core defaults.
	StreamIncremental core.IncrementalConfig
	// StreamRetention, when positive, bounds every stream to its newest N
	// ticks: older ticks are evicted and folded into the checkpointed fit
	// state (see core.Stream.SetRetention). A horizon already persisted on a
	// restored stream wins over this default. 0 keeps streams unbounded.
	StreamRetention int
	// MaxConcurrentRefits caps scheduler-admitted full stream refits running
	// at once (default DefaultMaxConcurrentRefits); streams whose refit is
	// deferred keep their debt and retry on the next append. Ignored when
	// RefitGate is set.
	MaxConcurrentRefits int
	// RefitGate, when non-nil, replaces the built-in semaphore gate —
	// chaos tests inject counting gates here.
	RefitGate core.RefitGate
	// FS abstracts the persistence filesystem (nil selects the real one).
	// Chaos tests pass a faultfs.Injector to schedule write faults.
	FS faultfs.FS
}

// Info describes one stored model without loading it.
type Info struct {
	ID          string `json:"id"`
	Version     int    `json:"version"`
	Engine      string `json:"engine"`
	CreatedUnix int64  `json:"created_unix"`
	UpdatedUnix int64  `json:"updated_unix"`
	Keywords    int    `json:"keywords"`
	Locations   int    `json:"locations"`
	Ticks       int    `json:"ticks"`
	Loaded      bool   `json:"loaded"`
}

// entry is one model slot: metadata always, the model itself only while
// loaded (elem tracks its LRU position; both nil when evicted). sum is the
// manifest checksum of the persisted JSON ("" for memory-only registries
// and legacy entries persisted before checksums existed); file is the
// manifest-relative path the bytes live at ("" for memory-only).
type entry struct {
	info  Info
	sum   string
	file  string
	model engine.Model
	elem  *list.Element
}

// Registry is a concurrent, optionally persistent model and stream store.
type Registry struct {
	opts Options
	dir  string // "" = memory only
	fs   faultfs.FS

	mu     sync.Mutex
	models map[string]*entry
	lru    *list.List // of *entry; front = most recently used
	loaded int

	streamMu sync.Mutex
	streams  map[string]*stream

	// refitGate rate-limits consolidating stream refits fleet-wide
	// (scheduler.go); shared by every stream the registry owns.
	refitGate core.RefitGate
}

// ValidateID checks a model or stream identifier: 1–64 characters from
// [a-zA-Z0-9._-], not starting with a dot (ids double as file names).
func ValidateID(id string) error {
	if id == "" || len(id) > 64 || id[0] == '.' {
		return fmt.Errorf("%w: %q", ErrBadID, id)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("%w: %q", ErrBadID, id)
		}
	}
	return nil
}

// Open builds a registry. With a DataDir it creates the layout
// (models/, streams/, manifest.json), reads the manifest, and registers
// every surviving model unloaded — load-on-boot means the index is restored
// immediately while model JSON loads lazily on first Get. Stream snapshots
// are restored eagerly (they must accept appends at once).
func Open(opts Options) (*Registry, error) {
	if opts.MaxLoaded <= 0 {
		opts.MaxLoaded = DefaultMaxLoaded
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS{}
	}
	r := &Registry{
		opts:      opts,
		dir:       opts.DataDir,
		fs:        opts.FS,
		models:    make(map[string]*entry),
		lru:       list.New(),
		streams:   make(map[string]*stream),
		refitGate: opts.RefitGate,
	}
	if r.refitGate == nil {
		r.refitGate = newSemGate(opts.MaxConcurrentRefits)
	}
	if r.dir == "" {
		r.gauges()
		return r, nil
	}
	for _, sub := range []string{modelsDir, streamsDir} {
		if err := r.fs.MkdirAll(filepath.Join(r.dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("registry: creating layout: %w", err)
		}
	}
	if err := r.loadManifest(); err != nil {
		return nil, err
	}
	if err := r.loadStreams(); err != nil {
		return nil, err
	}
	r.gauges()
	return r, nil
}

const (
	modelsDir    = "models"
	streamsDir   = "streams"
	manifestFile = "manifest.json"
)

// modelFile is the manifest-relative path of one model version's JSON.
// Every version gets its own file so an overwriting Put never touches the
// bytes the manifest currently points at: the new file is written, the
// manifest commits, and only then is the previous version's file deleted.
// The "@" separator cannot appear in a ValidateID id, so a versioned name
// can never collide with another model's legacy "<id>.json" file.
func modelFile(id string, version int) string {
	return fmt.Sprintf("%s/%s@v%d.json", modelsDir, id, version)
}

// absPath resolves a manifest-relative (slash-separated) file path under
// the data dir.
func (r *Registry) absPath(rel string) string {
	return filepath.Join(r.dir, filepath.FromSlash(rel))
}

// nopLogger swallows log records when no Logger is configured.
var nopLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
	Level: slog.Level(127), // above every level: nothing is ever emitted
}))

func (r *Registry) logger() *slog.Logger {
	if r.opts.Logger != nil {
		return r.opts.Logger
	}
	return nopLogger
}

// quarantine renames a bad persisted file to <path>.corrupt so it is out of
// the registry's way but still on disk for post-mortem, and counts it. A
// rename failure is logged but not fatal: the entry is dropped either way,
// so the bad file can at worst be re-quarantined on the next boot.
func (r *Registry) quarantine(path, kind, id string, cause error) {
	r.opts.Metrics.corruptFile()
	dst := path + ".corrupt"
	if err := r.fs.Rename(path, dst); err != nil {
		r.logger().Error("registry: quarantining corrupt file failed",
			"kind", kind, "id", id, "file", path, "cause", cause, "err", err)
		return
	}
	r.logger().Warn("registry: quarantined corrupt file",
		"kind", kind, "id", id, "file", dst, "cause", cause)
}

// loadManifest restores the model index from disk, verifying every listed
// file against its manifest checksum. A missing file is dropped; a file
// that fails its checksum (torn write, bit rot, hand edit) is quarantined
// as <file>.corrupt and dropped. Either way the boot proceeds — one bad
// model must not take the whole service down — and the manifest is
// rewritten atomically so the on-disk index matches what actually survived
// recovery.
func (r *Registry) loadManifest() error {
	data, err := r.fs.ReadFile(filepath.Join(r.dir, manifestFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil // fresh directory
	}
	if err != nil {
		return fmt.Errorf("registry: reading manifest: %w", err)
	}
	mf, err := decodeManifest(data)
	if err != nil {
		return err
	}
	dropped := 0
	for _, e := range mf.Models {
		path := filepath.Join(r.dir, filepath.FromSlash(e.File))
		body, readErr := r.fs.ReadFile(path)
		if readErr != nil {
			dropped++
			if errors.Is(readErr, fs.ErrNotExist) {
				r.opts.Metrics.corruptFile()
				r.logger().Warn("registry: dropping manifest entry, model file missing",
					"id", e.ID, "file", e.File, "err", readErr)
			} else {
				r.quarantine(path, "model", e.ID, readErr)
			}
			continue
		}
		if e.Checksum != "" {
			if got := checksumOf(body); got != e.Checksum {
				dropped++
				r.quarantine(path, "model", e.ID,
					fmt.Errorf("checksum %s, manifest says %s", got, e.Checksum))
				continue
			}
		}
		eng := e.Engine
		if eng == "" {
			// Entries persisted before the engine subsystem are Δ-SPOT models.
			eng = engine.Default
		}
		r.models[e.ID] = &entry{sum: e.Checksum, file: e.File, info: Info{
			ID: e.ID, Version: e.Version, Engine: eng,
			CreatedUnix: e.CreatedUnix, UpdatedUnix: e.UpdatedUnix,
			Keywords: e.Keywords, Locations: e.Locations, Ticks: e.Ticks,
		}}
	}
	if dropped > 0 {
		// Recovery rewrite: the manifest must never keep promising entries
		// that were dropped, or every future boot re-reports the same
		// corruption and List keeps serving ghosts.
		if err := r.saveManifestLocked(); err != nil {
			return err
		}
	}
	r.sweepOrphans()
	return nil
}

// sweepOrphans removes model files no manifest entry references: the
// previous version left behind when a crash hit between the manifest
// commit and its deletion, a new version whose manifest commit never
// happened, and stray temp files. Quarantined *.corrupt files stay for
// post-mortem. Best-effort — a failure here only leaves litter, never
// loses indexed data.
func (r *Registry) sweepOrphans() {
	referenced := make(map[string]bool, len(r.models))
	for _, e := range r.models {
		referenced[filepath.Base(filepath.FromSlash(e.file))] = true
	}
	dir := filepath.Join(r.dir, modelsDir)
	des, err := r.fs.ReadDir(dir)
	if err != nil {
		r.logger().Warn("registry: sweeping models dir", "err", err)
		return
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || referenced[name] || strings.HasSuffix(name, ".corrupt") {
			continue
		}
		if err := r.fs.Remove(filepath.Join(dir, name)); err != nil {
			r.logger().Warn("registry: removing orphan model file", "file", name, "err", err)
			continue
		}
		r.logger().Info("registry: removed orphan model file", "file", name)
	}
}

// saveManifestLocked rewrites the manifest from the current index.
func (r *Registry) saveManifestLocked() error {
	mf := &manifest{Version: manifestVersion}
	ids := make([]string, 0, len(r.models))
	for id := range r.models {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := r.models[id]
		info := e.info
		mf.Models = append(mf.Models, manifestEntry{
			ID: info.ID, Version: info.Version, Engine: info.Engine,
			File:        e.file,
			Checksum:    e.sum,
			CreatedUnix: info.CreatedUnix, UpdatedUnix: info.UpdatedUnix,
			Keywords: info.Keywords, Locations: info.Locations, Ticks: info.Ticks,
		})
	}
	data, err := encodeManifest(mf)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(r.fs, filepath.Join(r.dir, manifestFile), data); err != nil {
		r.opts.Metrics.persistError()
		return fmt.Errorf("registry: writing manifest: %w", err)
	}
	return nil
}

// Put stores (or replaces) a model under id, bumping its version, and
// persists it before updating the in-memory index so a crash between the
// two leaves the previous manifest pointing at the previous content. The
// model's engine (m.EngineName()) must be registered — it supplies the
// persistence encoding and is recorded so Get can decode with the same one.
func (r *Registry) Put(id string, m engine.Model) (Info, error) {
	if err := ValidateID(id); err != nil {
		return Info{}, err
	}
	if err := m.Validate(); err != nil {
		return Info{}, fmt.Errorf("registry: rejecting model %q: %w", id, err)
	}
	eng, err := engine.Lookup(m.EngineName())
	if err != nil {
		return Info{}, fmt.Errorf("registry: rejecting model %q: %w", id, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now().Unix()
	e, exists := r.models[id]
	if !exists {
		e = &entry{info: Info{ID: id, CreatedUnix: now}}
	}
	next := e.info
	next.Version++
	next.UpdatedUnix = now
	next.Engine = eng.Name()
	next.Keywords, next.Locations, next.Ticks = len(m.Keywords()), len(m.Locations()), m.Ticks()
	sum, file, prevFile := "", "", e.file
	if r.dir != "" {
		var buf strings.Builder
		if err := eng.EncodeModel(&buf, m); err != nil {
			return Info{}, fmt.Errorf("registry: encoding model %q: %w", id, err)
		}
		body := []byte(buf.String())
		sum = checksumOf(body)
		// Each version goes to its own file: an overwriting Put must never
		// touch the bytes the committed manifest points at, or a crash
		// before the manifest rewrite leaves a checksum mismatch that
		// quarantines the only surviving copy on the next boot.
		file = modelFile(id, next.Version)
		if err := writeFileAtomic(r.fs, r.absPath(file), body); err != nil {
			r.opts.Metrics.persistError()
			return Info{}, fmt.Errorf("registry: persisting model %q: %w", id, err)
		}
	}
	// Point of no return: install in memory, then index on disk.
	if !exists {
		r.models[id] = e
	}
	wasLoaded := e.elem != nil
	e.info = next
	e.sum = sum
	e.file = file
	e.model = m
	r.touchLocked(e)
	if !wasLoaded {
		r.loaded++
	}
	r.evictLocked(e)
	if r.dir != "" {
		if err := r.saveManifestLocked(); err != nil {
			return Info{}, err
		}
		if prevFile != "" && prevFile != file {
			// The manifest now points at the new version; the old file is
			// garbage. Removal is best-effort — a crash or fault here
			// leaves an orphan the next boot's sweep collects.
			if err := r.fs.Remove(r.absPath(prevFile)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				r.logger().Warn("registry: removing previous model version",
					"id", id, "file", prevFile, "err", err)
			}
		}
	}
	r.gaugesLocked()
	e.info.Loaded = true
	return e.info, nil
}

// Get returns the model stored under id, reloading it from disk (via the
// engine recorded at Put time) when the LRU bound had evicted it. The
// returned model is shared: read-only.
func (r *Registry) Get(id string) (engine.Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[id]
	if !ok {
		return nil, fmt.Errorf("%w: model %q", ErrNotFound, id)
	}
	if e.model == nil {
		path := r.absPath(e.file)
		body, err := r.fs.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("registry: reloading model %q: %w", id, err)
		}
		if e.sum != "" {
			if got := checksumOf(body); got != e.sum {
				// The file changed under us since it was persisted. Quarantine
				// and forget the entry: serving a silently-corrupted model is
				// strictly worse than a clean not-found.
				r.quarantine(path, "model", id,
					fmt.Errorf("checksum %s, manifest says %s", got, e.sum))
				delete(r.models, id)
				if err := r.saveManifestLocked(); err != nil {
					r.logger().Error("registry: rewriting manifest after quarantine", "err", err)
				}
				r.gaugesLocked()
				return nil, fmt.Errorf("%w: model %q (quarantined: checksum mismatch)", ErrNotFound, id)
			}
		}
		m, err := engine.Decode(e.info.Engine, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("registry: reloading model %q: %w", id, err)
		}
		r.logger().Debug("registry: reloaded model from disk", "id", id)
		e.model = m
		r.loaded++
	}
	r.touchLocked(e)
	r.evictLocked(e)
	r.gaugesLocked()
	return e.model, nil
}

// Stat returns a model's metadata without loading it.
func (r *Registry) Stat(id string) (Info, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[id]
	if !ok {
		return Info{}, fmt.Errorf("%w: model %q", ErrNotFound, id)
	}
	info := e.info
	info.Loaded = e.model != nil
	return info, nil
}

// Delete removes a model from memory and disk.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[id]
	if !ok {
		return fmt.Errorf("%w: model %q", ErrNotFound, id)
	}
	delete(r.models, id)
	if e.elem != nil {
		r.lru.Remove(e.elem)
		e.elem = nil
		r.loaded--
	}
	if r.dir != "" {
		if e.file != "" {
			if err := r.fs.Remove(r.absPath(e.file)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				r.logger().Warn("registry: removing model file", "id", id, "err", err)
			}
		}
		if err := r.saveManifestLocked(); err != nil {
			return err
		}
	}
	r.gaugesLocked()
	return nil
}

// List returns metadata for every stored model, sorted by id.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.models))
	for _, e := range r.models {
		info := e.info
		info.Loaded = e.model != nil
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of stored models (loaded or not).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.models)
}

// touchLocked moves e to the front of the LRU (inserting if absent).
func (r *Registry) touchLocked(e *entry) {
	if e.elem != nil {
		r.lru.MoveToFront(e.elem)
		return
	}
	e.elem = r.lru.PushFront(e)
}

// evictLocked drops least-recently-used models beyond the bound. keep is
// never evicted (it is the entry the caller is about to hand out).
// Memory-only registries never evict: there is no disk to reload from.
func (r *Registry) evictLocked(keep *entry) {
	if r.dir == "" {
		return
	}
	for r.loaded > r.opts.MaxLoaded {
		back := r.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*entry)
		if victim == keep {
			// keep is the oldest but must stay; nothing older to evict.
			return
		}
		r.lru.Remove(back)
		victim.elem = nil
		victim.model = nil
		r.loaded--
		r.opts.Metrics.eviction()
		r.logger().Debug("registry: evicted model", "id", victim.info.ID)
	}
}

// gauges refreshes the exported registry gauges.
func (r *Registry) gauges() {
	r.mu.Lock()
	r.gaugesLocked()
	r.mu.Unlock()
}

// gaugesLocked refreshes the model gauges (r.mu held). The stream gauge is
// maintained separately under streamMu — never take both locks at once.
func (r *Registry) gaugesLocked() {
	r.opts.Metrics.setModelSizes(len(r.models), r.loaded)
}
