package registry

import (
	"math"
	"path/filepath"
	"testing"

	"dspot/internal/core"
	"dspot/internal/tensor"
)

// FuzzDecodeManifest hammers the boot-time trust boundary: whatever bytes
// end up in manifest.json, the decoder must either reject them or return a
// manifest whose every entry upholds the invariants the registry assumes
// (valid unique ids, local file paths, positive versions).
func FuzzDecodeManifest(f *testing.F) {
	f.Add([]byte(`{"version":1,"models":[]}`))
	f.Add([]byte(`{"version":1,"models":[{"id":"a","version":1,"file":"models/a.json",` +
		`"created_unix":1,"updated_unix":2,"keywords":1,"locations":4,"ticks":300}]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"models":[{"id":"../x","version":1,"file":"models/x.json"}]}`))
	f.Add([]byte(`{"version":1,"models":[{"id":"a","version":1,"file":"/etc/passwd"}]}`))
	f.Add([]byte(`{"version":1,"models":[{"id":"a","version":0,"file":"m.json"}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		mf, err := decodeManifest(data)
		if err != nil {
			return
		}
		seen := map[string]bool{}
		for _, e := range mf.Models {
			if err := ValidateID(e.ID); err != nil {
				t.Fatalf("decoder admitted bad id %q", e.ID)
			}
			if seen[e.ID] {
				t.Fatalf("decoder admitted duplicate id %q", e.ID)
			}
			seen[e.ID] = true
			if e.Version < 1 {
				t.Fatalf("decoder admitted version %d", e.Version)
			}
			if e.File == "" || filepath.IsAbs(e.File) || !filepath.IsLocal(e.File) {
				t.Fatalf("decoder admitted unsafe path %q", e.File)
			}
		}
	})
}

// FuzzRestoreState hammers the other persisted trust boundary: stream
// snapshot JSON. Whatever bytes land in a streams/*.json file, decoding
// must either reject them or produce a state that restores into a stream
// whose Model/Forecast/State paths work without panicking, with no Inf or
// negative counts smuggled into the sequence.
func FuzzRestoreState(f *testing.F) {
	f.Add([]byte(`{"refit_every":30,"seq":[1,2,null,3],"fitted":false}`))
	f.Add([]byte(`{"refit_every":30,"seq":[],"fitted":true}`))
	f.Add([]byte(`{"refit_every":-5,"seq":[1],"since_refit":-9,"refits":-1}`))
	f.Add([]byte(`{"refit_every":10,"seq":[1e999]}`))
	f.Add([]byte(`{"refit_every":10,"seq":[-4,1,2]}`))
	f.Add([]byte(`{"refit_every":30,"seq":[1,2,3],"fitted":true,` +
		`"result":{"params":{"n":5,"beta":0.6,"delta":0.4,"gamma":0.3,"i0":0.01,` +
		`"t_eta":-1},"scale":1}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		state, refits, err := decodeStreamState(data)
		if err != nil {
			return
		}
		if refits < 0 {
			refits = 0 // refit counter is cosmetic; the stream must still work
		}
		for i, v := range state.Seq {
			if tensor.IsMissing(v) {
				continue
			}
			if math.IsInf(v, 0) || v < 0 {
				t.Fatalf("decoder admitted seq[%d] = %v", i, v)
			}
		}
		s := core.RestoreStream(core.FitOptions{Workers: 1, MaxOuterIter: 1, MaxShocks: 1}, state)
		_ = s.Len()
		_ = s.Ready()
		_ = s.Model()
		_ = s.Forecast(3)
		_ = s.State()
	})
}
