package registry

import (
	"path/filepath"
	"testing"
)

// FuzzDecodeManifest hammers the boot-time trust boundary: whatever bytes
// end up in manifest.json, the decoder must either reject them or return a
// manifest whose every entry upholds the invariants the registry assumes
// (valid unique ids, local file paths, positive versions).
func FuzzDecodeManifest(f *testing.F) {
	f.Add([]byte(`{"version":1,"models":[]}`))
	f.Add([]byte(`{"version":1,"models":[{"id":"a","version":1,"file":"models/a.json",` +
		`"created_unix":1,"updated_unix":2,"keywords":1,"locations":4,"ticks":300}]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"models":[{"id":"../x","version":1,"file":"models/x.json"}]}`))
	f.Add([]byte(`{"version":1,"models":[{"id":"a","version":1,"file":"/etc/passwd"}]}`))
	f.Add([]byte(`{"version":1,"models":[{"id":"a","version":0,"file":"m.json"}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		mf, err := decodeManifest(data)
		if err != nil {
			return
		}
		seen := map[string]bool{}
		for _, e := range mf.Models {
			if err := ValidateID(e.ID); err != nil {
				t.Fatalf("decoder admitted bad id %q", e.ID)
			}
			if seen[e.ID] {
				t.Fatalf("decoder admitted duplicate id %q", e.ID)
			}
			seen[e.ID] = true
			if e.Version < 1 {
				t.Fatalf("decoder admitted version %d", e.Version)
			}
			if e.File == "" || filepath.IsAbs(e.File) || !filepath.IsLocal(e.File) {
				t.Fatalf("decoder admitted unsafe path %q", e.File)
			}
		}
	})
}
