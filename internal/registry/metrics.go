package registry

import (
	"time"

	"dspot/internal/obs"
)

// Metrics exports the registry's health: how many models it indexes, how
// many are resident in memory, stream count, incremental refits, LRU
// evictions and persistence failures. All methods are nil-safe so the
// registry can run unmetered.
type Metrics struct {
	models        *obs.Gauge   // registry_models
	loaded        *obs.Gauge   // registry_models_loaded
	streams       *obs.Gauge   // registry_streams
	evictions     *obs.Counter // registry_evictions_total
	refits        *obs.Counter // registry_stream_refits_total
	persistErrors *obs.Counter      // registry_persist_errors_total
	corrupt       *obs.Counter      // registry_corrupt_total
	appendSec     *obs.HistogramVec // stream_append_seconds{path}

	evictedTicks   *obs.Counter    // stream_evicted_ticks_total
	rejectedTicks  *obs.CounterVec // stream_rejected_ticks_total{reason}
	gapFilledTicks *obs.Counter    // stream_gap_filled_ticks_total
	refitsDeferred *obs.Counter    // stream_refits_deferred_total
}

// NewMetricsOn registers the registry metrics on reg.
func NewMetricsOn(reg *obs.Registry) *Metrics {
	return &Metrics{
		models: reg.Gauge("registry_models",
			"Models indexed by the registry (loaded or evicted)."),
		loaded: reg.Gauge("registry_models_loaded",
			"Models currently resident in memory."),
		streams: reg.Gauge("registry_streams",
			"Named incremental streams."),
		evictions: reg.Counter("registry_evictions_total",
			"Models evicted from memory by the LRU bound."),
		refits: reg.Counter("registry_stream_refits_total",
			"Incremental stream refits performed."),
		persistErrors: reg.Counter("registry_persist_errors_total",
			"Failed writes of model, stream or manifest files."),
		corrupt: reg.Counter("registry_corrupt_total",
			"Persisted files found missing or corrupt (checksum mismatch, bad JSON) and quarantined."),
		appendSec: reg.HistogramVec("stream_append_seconds",
			"Stream append latency in seconds, including the persistence "+
				"write, split by maintenance path: \"incremental\" for "+
				"O(tail) appends, \"full\" when a batch refit ran.",
			obs.DefBuckets(), "path"),
		evictedTicks: reg.Counter("stream_evicted_ticks_total",
			"Ticks evicted off stream fronts by the retention horizon."),
		rejectedTicks: reg.CounterVec("stream_rejected_ticks_total",
			"Appended ticks refused or idempotently dropped, by reason: "+
				"\"duplicate\" for replayed/late ticks, \"gap_too_large\" "+
				"for positioned appends past the gap limit.", "reason"),
		gapFilledTicks: reg.Counter("stream_gap_filled_ticks_total",
			"Missing ticks synthesised to bridge forward gaps in positioned appends."),
		refitsDeferred: reg.Counter("stream_refits_deferred_total",
			"Due stream refits deferred by the concurrency gate."),
	}
}

func (m *Metrics) setModelSizes(models, loaded int) {
	if m == nil {
		return
	}
	m.models.Set(float64(models))
	m.loaded.Set(float64(loaded))
}

func (m *Metrics) setStreams(n int) {
	if m == nil {
		return
	}
	m.streams.Set(float64(n))
}

func (m *Metrics) eviction() {
	if m == nil {
		return
	}
	m.evictions.Inc()
}

func (m *Metrics) streamRefit() {
	if m == nil {
		return
	}
	m.refits.Inc()
}

func (m *Metrics) persistError() {
	if m == nil {
		return
	}
	m.persistErrors.Inc()
}

func (m *Metrics) streamAppend(path string, d time.Duration) {
	if m == nil {
		return
	}
	m.appendSec.With(path).Observe(d.Seconds())
}

func (m *Metrics) corruptFile() {
	if m == nil {
		return
	}
	m.corrupt.Inc()
}

func (m *Metrics) streamEvicted(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.evictedTicks.Add(float64(n))
}

func (m *Metrics) streamRejected(reason string, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.rejectedTicks.With(reason).Add(float64(n))
}

func (m *Metrics) streamGapFilled(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.gapFilledTicks.Add(float64(n))
}

func (m *Metrics) streamRefitDeferred() {
	if m == nil {
		return
	}
	m.refitsDeferred.Inc()
}
