package registry

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"regexp"

	"dspot/internal/faultfs"
)

// manifestVersion is the on-disk format version; bump on incompatible
// changes so old binaries refuse new directories instead of misreading
// them. Checksums were added as an optional field, so version 1 directories
// written before them still load (their entries simply go unverified until
// the next Put).
const manifestVersion = 1

// manifest is the registry's on-disk index: one entry per persisted model.
// The manifest is the source of truth on boot — a model file without an
// entry is ignored, an entry whose file is missing or fails its checksum is
// quarantined and dropped, and the manifest is rewritten to match what
// actually survived. Stream snapshots are deliberately not indexed here:
// each stream file is self-describing and the streams/ directory is scanned
// instead.
type manifest struct {
	Version int             `json:"version"`
	Models  []manifestEntry `json:"models"`
}

// manifestEntry records one model's identity and where its JSON lives,
// plus enough shape metadata to list models without loading them.
type manifestEntry struct {
	ID      string `json:"id"`
	Version int    `json:"version"`
	// Engine names the model engine that persisted (and decodes) the file.
	// "" is a legacy entry from before the engine subsystem: Δ-SPOT.
	Engine      string `json:"engine,omitempty"`
	File        string `json:"file"`               // relative to the data dir
	Checksum    string `json:"checksum,omitempty"` // "crc32:xxxxxxxx"; "" = unverified legacy entry
	CreatedUnix int64  `json:"created_unix"`
	UpdatedUnix int64  `json:"updated_unix"`
	Keywords    int    `json:"keywords"`
	Locations   int    `json:"locations"`
	Ticks       int    `json:"ticks"`
}

// checksumOf renders the manifest checksum of a persisted file's bytes.
func checksumOf(data []byte) string {
	return fmt.Sprintf("crc32:%08x", crc32.ChecksumIEEE(data))
}

var checksumRe = regexp.MustCompile(`^crc32:[0-9a-f]{8}$`)

// decodeManifest parses and validates manifest JSON. Every structural
// invariant the registry later relies on is checked here — the decoder is
// the trust boundary for a data dir that may have been hand-edited or
// corrupted, and it is fuzzed (FuzzDecodeManifest).
func decodeManifest(data []byte) (*manifest, error) {
	var mf manifest
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, fmt.Errorf("registry: decoding manifest: %w", err)
	}
	if mf.Version != manifestVersion {
		return nil, fmt.Errorf("registry: manifest version %d, want %d", mf.Version, manifestVersion)
	}
	seen := make(map[string]bool, len(mf.Models))
	for i := range mf.Models {
		e := &mf.Models[i]
		if err := ValidateID(e.ID); err != nil {
			return nil, fmt.Errorf("registry: manifest entry %d: %w", i, err)
		}
		if seen[e.ID] {
			return nil, fmt.Errorf("registry: manifest lists %q twice", e.ID)
		}
		seen[e.ID] = true
		if e.Version < 1 {
			return nil, fmt.Errorf("registry: manifest entry %q: version %d < 1", e.ID, e.Version)
		}
		if e.File == "" || filepath.IsAbs(e.File) || !filepath.IsLocal(e.File) {
			return nil, fmt.Errorf("registry: manifest entry %q: unsafe file path %q", e.ID, e.File)
		}
		if e.Checksum != "" && !checksumRe.MatchString(e.Checksum) {
			return nil, fmt.Errorf("registry: manifest entry %q: malformed checksum %q", e.ID, e.Checksum)
		}
		if e.Keywords < 0 || e.Locations < 0 || e.Ticks < 0 {
			return nil, fmt.Errorf("registry: manifest entry %q: negative shape", e.ID)
		}
	}
	return &mf, nil
}

// encodeManifest renders the manifest as indented JSON.
func encodeManifest(mf *manifest) ([]byte, error) {
	return json.MarshalIndent(mf, "", "  ")
}

// writeFileAtomic writes data to path via a temp file in the same
// directory, fsyncs the file, renames it over path, and fsyncs the parent
// directory. Readers (and a crash at any point) see either the old or the
// new content, never a torn write — and once the call returns, the new
// content survives a power cut: without the file fsync the rename can
// publish a name pointing at data still in the page cache, and without the
// directory fsync the rename itself can be lost.
func writeFileAtomic(fsys faultfs.FS, path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := fsys.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { fsys.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return err
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		cleanup()
		return err
	}
	return fsys.SyncDir(dir)
}
