package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// manifestVersion is the on-disk format version; bump on incompatible
// changes so old binaries refuse new directories instead of misreading them.
const manifestVersion = 1

// manifest is the registry's on-disk index: one entry per persisted model.
// The manifest is the source of truth on boot — a model file without an
// entry is ignored, an entry without a file is dropped with a warning.
// Stream snapshots are deliberately not indexed here: each stream file is
// self-describing and the streams/ directory is scanned instead.
type manifest struct {
	Version int             `json:"version"`
	Models  []manifestEntry `json:"models"`
}

// manifestEntry records one model's identity and where its JSON lives,
// plus enough shape metadata to list models without loading them.
type manifestEntry struct {
	ID          string `json:"id"`
	Version     int    `json:"version"`
	File        string `json:"file"` // relative to the data dir
	CreatedUnix int64  `json:"created_unix"`
	UpdatedUnix int64  `json:"updated_unix"`
	Keywords    int    `json:"keywords"`
	Locations   int    `json:"locations"`
	Ticks       int    `json:"ticks"`
}

// decodeManifest parses and validates manifest JSON. Every structural
// invariant the registry later relies on is checked here — the decoder is
// the trust boundary for a data dir that may have been hand-edited or
// corrupted, and it is fuzzed (FuzzDecodeManifest).
func decodeManifest(data []byte) (*manifest, error) {
	var mf manifest
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, fmt.Errorf("registry: decoding manifest: %w", err)
	}
	if mf.Version != manifestVersion {
		return nil, fmt.Errorf("registry: manifest version %d, want %d", mf.Version, manifestVersion)
	}
	seen := make(map[string]bool, len(mf.Models))
	for i := range mf.Models {
		e := &mf.Models[i]
		if err := ValidateID(e.ID); err != nil {
			return nil, fmt.Errorf("registry: manifest entry %d: %w", i, err)
		}
		if seen[e.ID] {
			return nil, fmt.Errorf("registry: manifest lists %q twice", e.ID)
		}
		seen[e.ID] = true
		if e.Version < 1 {
			return nil, fmt.Errorf("registry: manifest entry %q: version %d < 1", e.ID, e.Version)
		}
		if e.File == "" || filepath.IsAbs(e.File) || !filepath.IsLocal(e.File) {
			return nil, fmt.Errorf("registry: manifest entry %q: unsafe file path %q", e.ID, e.File)
		}
		if e.Keywords < 0 || e.Locations < 0 || e.Ticks < 0 {
			return nil, fmt.Errorf("registry: manifest entry %q: negative shape", e.ID)
		}
	}
	return &mf, nil
}

// encodeManifest renders the manifest as indented JSON.
func encodeManifest(mf *manifest) ([]byte, error) {
	return json.MarshalIndent(mf, "", "  ")
}

// writeFileAtomic writes data to path via a temp file in the same directory
// plus rename, so readers (and a crash at any point) see either the old or
// the new content, never a torn write.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
