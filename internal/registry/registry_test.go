package registry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dspot/internal/core"
	"dspot/internal/dataset"
	"dspot/internal/engine"
	"dspot/internal/obs"
	"dspot/internal/tensor"
)

// testModel builds a small valid model whose forecast depends on seed, so
// two distinct models are distinguishable end to end.
func testModel(seed int) *engine.DspotModel {
	return engine.NewDspotModel(&core.Model{
		Keywords:  []string{"kw"},
		Locations: []string{"all"},
		Ticks:     60,
		Global: []core.KeywordParams{{
			N: 1 + float64(seed), Beta: 0.6, Delta: 0.4, Gamma: 0.3,
			I0: 0.01, TEta: core.NoGrowth,
		}},
		Shocks: []core.Shock{{
			Keyword: 0, Period: 20, Start: 5, Width: 2,
			Strength: []float64{4, 4, 4},
		}},
		Scale: []float64{1},
	})
}

// coreOf unwraps a Δ-SPOT engine model for field-level assertions.
func coreOf(t *testing.T, m engine.Model) *core.Model {
	t.Helper()
	dm, ok := m.(*engine.DspotModel)
	if !ok {
		t.Fatalf("model is a %T, want *engine.DspotModel", m)
	}
	return dm.M
}

// modelDiskPath reads the manifest to find where id's bytes live on disk,
// so tests tamper with the right file whatever the versioned layout names it.
func modelDiskPath(t *testing.T, dir, id string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	mf, err := decodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range mf.Models {
		if e.ID == id {
			return filepath.Join(dir, filepath.FromSlash(e.File))
		}
	}
	t.Fatalf("manifest has no entry for %q", id)
	return ""
}

func TestValidateID(t *testing.T) {
	for _, good := range []string{"a", "model-1", "A.b_c", "x9"} {
		if err := ValidateID(good); err != nil {
			t.Errorf("ValidateID(%q) = %v", good, err)
		}
	}
	long := ""
	for i := 0; i < 65; i++ {
		long += "a"
	}
	for _, bad := range []string{"", ".hidden", "a/b", "a\\b", "a b", "é", long, ".."} {
		if err := ValidateID(bad); !errors.Is(err, ErrBadID) {
			t.Errorf("ValidateID(%q) = %v, want ErrBadID", bad, err)
		}
	}
}

func TestPutGetDeleteMemory(t *testing.T) {
	r, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(nope) = %v", err)
	}
	info, err := r.Put("m1", testModel(1))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Keywords != 1 || info.Ticks != 60 || info.Engine != engine.Default {
		t.Fatalf("Put info = %+v", info)
	}
	info, err = r.Put("m1", testModel(2))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("replacing Put version = %d, want 2", info.Version)
	}
	m, err := r.Get("m1")
	if err != nil {
		t.Fatal(err)
	}
	if n := coreOf(t, m).Global[0].N; n != 3 {
		t.Fatalf("Get returned stale model: N = %g", n)
	}
	if n := r.Len(); n != 1 {
		t.Fatalf("Len = %d", n)
	}
	if err := r.Delete("m1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("m1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete = %v", err)
	}
	// Invalid ids and invalid models are rejected before touching state.
	if _, err := r.Put("../evil", testModel(1)); !errors.Is(err, ErrBadID) {
		t.Fatalf("bad id accepted: %v", err)
	}
	bad := testModel(1)
	bad.M.Global[0].Beta = math.NaN()
	if _, err := r.Put("bad", bad); err == nil {
		t.Fatal("invalid model accepted")
	}
}

// The acceptance-criteria durability path at registry level: Put models,
// reopen the directory, serve identical content from the reloaded store.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := testModel(3)
	if _, err := r.Put("keep", want); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("drop", testModel(4)); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("drop"); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Len(); got != 1 {
		t.Fatalf("reloaded registry has %d models, want 1", got)
	}
	if _, err := r2.Get("drop"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted model survived restart: %v", err)
	}
	info, err := r2.Stat("keep")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Loaded {
		t.Fatalf("reloaded Stat = %+v (models must load lazily)", info)
	}
	got, err := r2.Get("keep")
	if err != nil {
		t.Fatal(err)
	}
	wf, gf := want.M.ForecastGlobal(0, 20), coreOf(t, got).ForecastGlobal(0, 20)
	for i := range wf {
		if wf[i] != gf[i] {
			t.Fatalf("forecast diverges after restart at %d: %g != %g", i, gf[i], wf[i])
		}
	}
}

// TestLegacyManifestLoadsAsDspot seeds a data directory in the pre-engine
// on-disk format — raw dataset model JSON, manifest entries without an
// "engine" field — and checks the registry opens it, reports the entries as
// Δ-SPOT models, and serves them through the engine-typed Get.
func TestLegacyManifestLoadsAsDspot(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "models"), 0o755); err != nil {
		t.Fatal(err)
	}
	want := testModel(5)
	var buf bytes.Buffer
	if err := dataset.WriteModel(&buf, want.M); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()
	if err := os.WriteFile(filepath.Join(dir, "models", "old@v1.json"), body, 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := fmt.Sprintf(`{
  "version": 1,
  "models": [
    {
      "id": "old",
      "version": 1,
      "file": "models/old@v1.json",
      "checksum": %q,
      "created_unix": 1700000000,
      "updated_unix": 1700000000,
      "keywords": 1,
      "locations": 1,
      "ticks": 60
    }
  ]
}`, checksumOf(body))
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	info, err := r.Stat("old")
	if err != nil {
		t.Fatal(err)
	}
	if info.Engine != engine.Default {
		t.Fatalf("legacy entry Engine = %q, want %q", info.Engine, engine.Default)
	}
	m, err := r.Get("old")
	if err != nil {
		t.Fatal(err)
	}
	if m.EngineName() != engine.Default {
		t.Fatalf("legacy model EngineName = %q", m.EngineName())
	}
	wf, gf := want.M.ForecastGlobal(0, 10), coreOf(t, m).ForecastGlobal(0, 10)
	for i := range wf {
		if wf[i] != gf[i] {
			t.Fatalf("legacy model forecast diverges at %d", i)
		}
	}
	// An overwriting Put upgrades the entry to the engine-stamped format.
	if _, err := r.Put("old", testModel(6)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	mf, err := decodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Models) != 1 || mf.Models[0].Engine != engine.Default {
		t.Fatalf("rewritten manifest = %+v, want engine-stamped entry", mf.Models)
	}
}

func TestManifestEntryWithMissingFileDropped(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("a", testModel(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("b", testModel(2)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(modelDiskPath(t, dir, "a")); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("entry with missing file not dropped: %v", err)
	}
	if _, err := r2.Get("b"); err != nil {
		t.Fatalf("surviving model unreadable: %v", err)
	}
}

func TestCorruptManifestFailsOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{DataDir: dir}); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestLRUEvictionAndReload(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	r, err := Open(Options{DataDir: dir, MaxLoaded: 2, Metrics: NewMetricsOn(reg)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.Put(fmt.Sprintf("m%d", i), testModel(i)); err != nil {
			t.Fatal(err)
		}
	}
	loaded := 0
	for _, info := range r.List() {
		if info.Loaded {
			loaded++
		}
	}
	if loaded != 2 {
		t.Fatalf("%d models loaded, want 2 (LRU bound)", loaded)
	}
	// The oldest puts were evicted; Get transparently reloads from disk and
	// in turn evicts the now-oldest resident.
	m, err := r.Get("m0")
	if err != nil {
		t.Fatal(err)
	}
	if n := coreOf(t, m).Global[0].N; n != 1 {
		t.Fatalf("reloaded m0 has N = %g", n)
	}
}

// Memory-only registries must never evict — there is nowhere to reload from.
func TestNoEvictionWithoutDataDir(t *testing.T) {
	r, err := Open(Options{MaxLoaded: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Put(fmt.Sprintf("m%d", i), testModel(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Get(fmt.Sprintf("m%d", i)); err != nil {
			t.Fatalf("memory-only model m%d lost: %v", i, err)
		}
	}
}

func TestConcurrentPutGetListDelete(t *testing.T) {
	r, err := Open(Options{DataDir: t.TempDir(), MaxLoaded: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("m%d", w%4)
			for i := 0; i < 10; i++ {
				if _, err := r.Put(id, testModel(w)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := r.Get(id); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("Get: %v", err)
					return
				}
				r.List()
				if i%5 == 4 {
					_ = r.Delete(id) // races with other writers: ErrNotFound ok
				}
			}
		}(w)
	}
	wg.Wait()
}

// streamSeries synthesises a cheap-to-fit series with one periodic spike.
func streamSeries(n int) []float64 {
	p := core.KeywordParams{N: 2, Beta: 0.7, Delta: 0.4, Gamma: 0.3, I0: 0.05,
		TEta: core.NoGrowth}
	shock := core.Shock{Keyword: 0, Period: 20, Start: 4, Width: 2}
	occ := shock.Occurrences(n)
	shock.Strength = make([]float64, occ)
	for i := range shock.Strength {
		shock.Strength[i] = 6
	}
	m := &core.Model{Keywords: []string{"s"}, Ticks: n,
		Global: []core.KeywordParams{p}, Shocks: []core.Shock{shock}}
	return m.SimulateGlobal(0, n)
}

func TestStreamAppendPersistRestore(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir,
		StreamFit: core.FitOptions{DisableGrowth: true, Workers: 1, MaxShocks: 3}}
	r, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	series := streamSeries(80)
	st, err := r.AppendStream(context.Background(), "ticker", series[:60], AppendOptions{RefitEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Refitted || !st.Ready || st.Len != 60 {
		t.Fatalf("first append status = %+v", st)
	}
	fc, err := r.StreamForecast("ticker", 10)
	if err != nil || len(fc) != 10 {
		t.Fatalf("forecast = %v, %v", fc, err)
	}
	if _, err := r.StreamForecast("ghost", 10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown stream forecast = %v", err)
	}

	// Restart: the stream resumes with identical state and keeps accepting.
	r2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := r2.StreamStatusFor("ticker")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len != 60 || !st2.Ready || st2.Refits != st.Refits {
		t.Fatalf("restored stream status = %+v, want len 60 ready refits=%d", st2, st.Refits)
	}
	fc2, err := r2.StreamForecast("ticker", 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fc {
		if fc[i] != fc2[i] {
			t.Fatalf("stream forecast diverges after restart at %d", i)
		}
	}
	if _, err := r2.AppendStream(context.Background(), "ticker", series[60:], AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	if got, _ := r2.StreamStatusFor("ticker"); got.Len != 80 {
		t.Fatalf("post-restart append Len = %d", got.Len)
	}
	m, err := r2.StreamModel("ticker")
	if err != nil || m == nil {
		t.Fatalf("stream model = %v, %v", m, err)
	}

	if err := r2.DeleteStream("ticker"); err != nil {
		t.Fatal(err)
	}
	if err := r2.DeleteStream("ticker"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double DeleteStream = %v", err)
	}
	r3, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := r3.ListStreams(); len(got) != 0 {
		t.Fatalf("deleted stream survived restart: %+v", got)
	}
}

func TestStreamAppendValidation(t *testing.T) {
	r, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AppendStream(context.Background(), "bad id", []float64{1}, AppendOptions{}); !errors.Is(err, ErrBadID) {
		t.Fatalf("bad stream id accepted: %v", err)
	}
	if _, err := r.AppendStream(context.Background(), "s", nil, AppendOptions{}); err == nil {
		t.Fatal("empty append accepted")
	}
	// Missing values survive the append path.
	if _, err := r.AppendStream(context.Background(), "s", []float64{1, tensor.Missing, 2}, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	st, err := r.StreamStatusFor("s")
	if err != nil || st.Len != 3 {
		t.Fatalf("status = %+v, %v", st, err)
	}
}

func TestCorruptStreamSnapshotSkipped(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AppendStream(context.Background(), "ok", []float64{1, 2, 3}, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "streams", "bad.json"),
		[]byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatalf("corrupt stream snapshot blocked boot: %v", err)
	}
	if got := r2.ListStreams(); len(got) != 1 || got[0].ID != "ok" {
		t.Fatalf("streams after boot = %+v", got)
	}
}
