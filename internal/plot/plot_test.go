package plot

import (
	"math"
	"strings"
	"testing"
)

func TestChartRenderBasics(t *testing.T) {
	data := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	out := NewChart(20, 5).Title("ramp").Line(data, '.').Render()
	if !strings.Contains(out, "ramp") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, ".") {
		t.Fatal("no markers drawn")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + x labels
	if len(lines) != 1+5+2 {
		t.Fatalf("line count %d: %q", len(lines), out)
	}
	// Monotone ramp: first marker column should be near the bottom row,
	// last near the top row.
	rows := lines[1 : 1+5]
	if !strings.Contains(rows[0], ".") {
		t.Fatal("top row should contain the ramp maximum")
	}
	if !strings.Contains(rows[4], ".") {
		t.Fatal("bottom row should contain the ramp minimum")
	}
}

func TestChartTwoSeriesDistinctMarkers(t *testing.T) {
	a := []float64{1, 1, 1, 1}
	b := []float64{2, 2, 2, 2}
	out := NewChart(16, 4).Line(a, '.').Line(b, '*').Render()
	if !strings.Contains(out, ".") || !strings.Contains(out, "*") {
		t.Fatalf("markers missing: %q", out)
	}
}

func TestChartEmpty(t *testing.T) {
	if out := NewChart(16, 4).Render(); !strings.Contains(out, "empty") {
		t.Fatalf("empty chart rendered %q", out)
	}
	nan := []float64{math.NaN(), math.NaN()}
	if out := NewChart(16, 4).Line(nan, '.').Render(); !strings.Contains(out, "empty") {
		t.Fatalf("all-NaN chart rendered %q", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	out := NewChart(16, 4).Line([]float64{5, 5, 5}, '.').Render()
	if strings.Contains(out, "empty") {
		t.Fatal("constant series should render")
	}
}

func TestChartMinimumSize(t *testing.T) {
	c := NewChart(1, 1)
	if c.Width < 16 || c.Height < 4 {
		t.Fatalf("minimums not enforced: %dx%d", c.Width, c.Height)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"US", "JP"}, []float64{10, 5}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bar lines = %d", len(lines))
	}
	usHashes := strings.Count(lines[0], "#")
	jpHashes := strings.Count(lines[1], "#")
	if usHashes != 20 || jpHashes != 10 {
		t.Fatalf("bar lengths %d/%d, want 20/10", usHashes, jpHashes)
	}
	if !strings.HasPrefix(lines[0], "US") {
		t.Fatalf("label missing: %q", lines[0])
	}
}

func TestBarsEdgeCases(t *testing.T) {
	if out := Bars([]string{"a"}, []float64{1, 2}, 10); !strings.Contains(out, "mismatch") {
		t.Fatal("mismatch not reported")
	}
	out := Bars([]string{"zero"}, []float64{0}, 10)
	if strings.Count(out, "#") != 0 {
		t.Fatal("zero value drew bars")
	}
	out = Bars([]string{"neg"}, []float64{-3}, 10)
	if strings.Count(out, "#") != 0 {
		t.Fatal("negative value drew bars")
	}
}

func TestSparkline(t *testing.T) {
	out := Sparkline([]float64{0, 1, 2, 3}, 4)
	if len([]rune(out)) != 4 {
		t.Fatalf("sparkline width %d", len([]rune(out)))
	}
	runes := []rune(out)
	if runes[0] == runes[3] {
		t.Fatal("ramp should span block levels")
	}
	if got := Sparkline(nil, 5); got != "" {
		t.Fatalf("empty data sparkline %q", got)
	}
	blank := Sparkline([]float64{math.NaN()}, 3)
	if strings.TrimSpace(blank) != "" {
		t.Fatalf("NaN sparkline %q", blank)
	}
	flat := Sparkline([]float64{2, 2}, 4)
	if len([]rune(flat)) != 4 {
		t.Fatal("flat sparkline wrong width")
	}
}
