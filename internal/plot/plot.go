// Package plot renders time series and bar charts as plain text for the
// CLIs and examples — the terminal equivalent of the paper's figure panels
// (observed dots vs fitted line, reaction bar maps, RMSE comparisons).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Chart is a fixed-size character canvas with series plotted onto it.
type Chart struct {
	Width  int // plot columns (excluding the axis gutter)
	Height int // plot rows

	series []series
	title  string
}

type series struct {
	data   []float64
	marker byte
}

// NewChart returns a chart with the given canvas size (sensible minimums
// are enforced: 16×4).
func NewChart(width, height int) *Chart {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	return &Chart{Width: width, Height: height}
}

// Title sets the chart heading.
func (c *Chart) Title(t string) *Chart { c.title = t; return c }

// Line adds a series drawn with the given marker rune ('.' for observed
// data, '*' for a fitted curve, etc.). NaN values are skipped.
func (c *Chart) Line(data []float64, marker byte) *Chart {
	c.series = append(c.series, series{data, marker})
	return c
}

// Render draws all series on shared axes. The x axis is compressed or
// stretched to the canvas width; y is scaled to the global min/max.
func (c *Chart) Render() string {
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range c.series {
		for _, v := range s.data {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(s.data) > maxLen {
			maxLen = len(s.data)
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		return "(empty chart)\n"
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	for _, s := range c.series {
		for col := 0; col < c.Width; col++ {
			// Sample the series at this column (nearest index).
			idx := col * (maxLen - 1) / max(c.Width-1, 1)
			if idx >= len(s.data) {
				continue
			}
			v := s.data[idx]
			if math.IsNaN(v) {
				continue
			}
			frac := (v - lo) / (hi - lo)
			row := c.Height - 1 - int(frac*float64(c.Height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= c.Height {
				row = c.Height - 1
			}
			grid[row][col] = s.marker
		}
	}

	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	gutter := len(fmt.Sprintf("%.4g", hi))
	if g := len(fmt.Sprintf("%.4g", lo)); g > gutter {
		gutter = g
	}
	for r, row := range grid {
		label := strings.Repeat(" ", gutter)
		if r == 0 {
			label = fmt.Sprintf("%*s", gutter, fmt.Sprintf("%.4g", hi))
		}
		if r == c.Height-1 {
			label = fmt.Sprintf("%*s", gutter, fmt.Sprintf("%.4g", lo))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, row)
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", gutter), strings.Repeat("-", c.Width))
	fmt.Fprintf(&b, "%s  0%*d\n", strings.Repeat(" ", gutter), c.Width-1, maxLen-1)
	return b.String()
}

// Bars renders a horizontal bar chart of labelled values, scaled to width.
// Values must be non-negative; negative values are clamped to zero.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		return "(bar chart: label/value mismatch)\n"
	}
	if width < 8 {
		width = 8
	}
	maxVal := 0.0
	labelW := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		if v < 0 {
			v = 0
		}
		n := 0
		if maxVal > 0 {
			n = int(float64(width) * v / maxVal)
		}
		fmt.Fprintf(&b, "%-*s %9.4g %s\n", labelW, labels[i], values[i],
			strings.Repeat("#", n))
	}
	return b.String()
}

// Sparkline renders a one-line summary of a series using block characters.
func Sparkline(data []float64, width int) string {
	blocks := []rune("▁▂▃▄▅▆▇█")
	if width < 1 {
		width = len(data)
	}
	if len(data) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", width)
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	for col := 0; col < width; col++ {
		idx := col * (len(data) - 1) / max(width-1, 1)
		v := data[idx]
		if math.IsNaN(v) {
			b.WriteByte(' ')
			continue
		}
		level := int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		b.WriteRune(blocks[level])
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
