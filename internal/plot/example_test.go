package plot_test

import (
	"fmt"

	"dspot/internal/plot"
)

// Horizontal bars scaled to the maximum value.
func ExampleBars() {
	out := plot.Bars([]string{"SIRS", "D-SPOT"}, []float64{0.10, 0.02}, 10)
	fmt.Print(out)
	// Output:
	// SIRS         0.1 ##########
	// D-SPOT      0.02 ##
}

// A one-line block-character summary of a series.
func ExampleSparkline() {
	line := plot.Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	fmt.Println(len([]rune(line)))
	// Output:
	// 8
}
