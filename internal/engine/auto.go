package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"dspot/internal/tensor"
)

// AutoFit fits every registered engine to the tensor and keeps the model with
// the lowest MDL coding cost — the paper's model-selection argument applied
// across families. It returns the winning model, the per-engine cost table
// (finite costs only; engines whose fit failed or whose cost is non-finite
// are absent), and an error only when no engine produced a usable model.
//
// Engines fit concurrently; ties break lexicographically by engine name so
// selection is deterministic.
func AutoFit(x *tensor.Tensor, opts FitOptions) (Model, map[string]float64, error) {
	if err := validateInput(x, &opts); err != nil {
		return nil, nil, err
	}
	ctx := ctxOf(opts)
	names := Names()

	type attempt struct {
		name  string
		model Model
		cost  float64
		err   error
	}
	attempts := make([]attempt, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			a := attempt{name: name}
			defer func() { attempts[i] = a }()
			e, err := Lookup(name)
			if err != nil {
				a.err = err
				return
			}
			m, err := e.Fit(x, opts)
			if err != nil {
				a.err = fmt.Errorf("engine %s: %w", name, err)
				return
			}
			c, err := e.CodingCost(m, x)
			if err != nil {
				a.err = fmt.Errorf("engine %s: coding cost: %w", name, err)
				return
			}
			a.model, a.cost = m, c
		}(i, name)
	}
	wg.Wait()

	costs := make(map[string]float64, len(names))
	var (
		best     Model
		bestCost = math.Inf(1)
		errs     []error
	)
	for _, a := range attempts {
		if a.err != nil {
			errs = append(errs, a.err)
			continue
		}
		if !isFinite(a.cost) {
			// JSON cannot carry Inf/NaN, and a non-finite cost means the fit
			// degenerated anyway — drop it from the table and the race.
			errs = append(errs, fmt.Errorf("engine %s: non-finite coding cost", a.name))
			continue
		}
		costs[a.name] = a.cost
		if a.cost < bestCost {
			best, bestCost = a.model, a.cost
		}
	}
	if best == nil {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("engine: auto fit cancelled: %w", err)
		}
		return nil, nil, fmt.Errorf("engine: auto fit: every engine failed: %w", errors.Join(errs...))
	}
	return best, costs, nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
