package engine

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"dspot/internal/numcheck"
	"dspot/internal/tensor"
)

// conformanceTensor builds a small deterministic world every engine family
// can fit: one logistic adoption curve and one seasonal curve, each split
// across two locations.
func conformanceTensor() *tensor.Tensor {
	const n = 72
	x := tensor.New([]string{"rise", "wave"}, []string{"us", "jp"}, n)
	for t := 0; t < n; t++ {
		rise := 100 / (1 + math.Exp(-0.15*(float64(t)-30)))
		wave := 40 + 20*math.Sin(2*math.Pi*float64(t)/24)
		x.Set(0, 0, t, 0.6*rise)
		x.Set(0, 1, t, 0.4*rise)
		x.Set(1, 0, t, 0.7*wave)
		x.Set(1, 1, t, 0.3*wave)
	}
	return x
}

// conformanceOpts are the shared fit options: single worker so scheduling
// cannot perturb any engine, and a shock bound to keep fits quick.
func conformanceOpts() FitOptions {
	return FitOptions{Workers: 1, MaxShocks: 2}
}

func encodeModel(t *testing.T, e ModelEngine, m Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.EncodeModel(&buf, m); err != nil {
		t.Fatalf("EncodeModel: %v", err)
	}
	return buf.Bytes()
}

// TestConformanceDeterministicRefit pins that every engine is a pure function
// of its input: two fits of the same tensor encode byte-for-byte identically.
func TestConformanceDeterministicRefit(t *testing.T) {
	x := conformanceTensor()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			e, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			m1, err := e.Fit(x.Clone(), conformanceOpts())
			if err != nil {
				t.Fatalf("first fit: %v", err)
			}
			m2, err := e.Fit(x.Clone(), conformanceOpts())
			if err != nil {
				t.Fatalf("second fit: %v", err)
			}
			b1, b2 := encodeModel(t, e, m1), encodeModel(t, e, m2)
			if !bytes.Equal(b1, b2) {
				t.Errorf("refit not deterministic:\nfirst:  %s\nsecond: %s", b1, b2)
			}
		})
	}
}

// TestConformanceForecastShape pins the forecast contract: exactly horizon
// values, all finite, for both a named and the default ("") keyword.
func TestConformanceForecastShape(t *testing.T) {
	x := conformanceTensor()
	const horizon = 12
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			e, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := e.Fit(x.Clone(), conformanceOpts())
			if err != nil {
				t.Fatalf("fit: %v", err)
			}
			for _, kw := range []string{"", "wave"} {
				fc, err := e.Forecast(m, kw, horizon)
				if err != nil {
					t.Fatalf("Forecast(%q): %v", kw, err)
				}
				if len(fc) != horizon {
					t.Fatalf("Forecast(%q) returned %d values, want %d", kw, len(fc), horizon)
				}
				for i, v := range fc {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("Forecast(%q)[%d] = %v, want finite", kw, i, v)
					}
				}
			}
			if _, err := e.Forecast(m, "no-such-keyword", horizon); err == nil {
				t.Error("Forecast of unknown keyword succeeded, want error")
			}
		})
	}
}

// TestConformanceCancellation pins cooperative cancellation: a pre-cancelled
// context stops every engine before it returns a model, with an error that
// unwraps to context.Canceled.
func TestConformanceCancellation(t *testing.T) {
	x := conformanceTensor()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			e, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			opts := conformanceOpts()
			opts.Context = ctx
			m, err := e.Fit(x.Clone(), opts)
			if err == nil {
				t.Fatal("fit with cancelled context succeeded")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want wrap of context.Canceled", err)
			}
			if m != nil {
				t.Fatalf("cancelled fit leaked a partial model: %v", m)
			}
		})
	}
}

// TestConformanceRejectsNonFinite pins the numcheck boundary: an Inf cell is
// rejected with the typed numcheck error before any fitting work.
func TestConformanceRejectsNonFinite(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			e, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			x := conformanceTensor()
			x.Set(1, 0, 10, math.Inf(1))
			if _, err := e.Fit(x, conformanceOpts()); !errors.Is(err, numcheck.ErrInf) {
				t.Fatalf("err = %v, want wrap of numcheck.ErrInf", err)
			}
		})
	}
}

// TestConformanceEncodeDecodeRoundTrip pins persistence: decode(encode(m))
// re-encodes to the same bytes, and the revived model keeps its identity.
func TestConformanceEncodeDecodeRoundTrip(t *testing.T) {
	x := conformanceTensor()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			e, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := e.Fit(x.Clone(), conformanceOpts())
			if err != nil {
				t.Fatalf("fit: %v", err)
			}
			if m.EngineName() != name {
				t.Fatalf("model EngineName = %q, want %q", m.EngineName(), name)
			}
			b := encodeModel(t, e, m)
			m2, err := e.DecodeModel(bytes.NewReader(b))
			if err != nil {
				t.Fatalf("DecodeModel: %v", err)
			}
			if got := encodeModel(t, e, m2); !bytes.Equal(b, got) {
				t.Errorf("round trip changed encoding:\nbefore: %s\nafter:  %s", b, got)
			}
			if m2.Ticks() != x.N() || len(m2.Keywords()) != x.D() {
				t.Errorf("revived model shape %d×%d, want %d×%d",
					len(m2.Keywords()), m2.Ticks(), x.D(), x.N())
			}
		})
	}
}

// TestConformanceCodingCostFinite pins that CodingCost of a model against its
// own training tensor is finite and positive for every engine — the property
// AutoFit's comparison rests on.
func TestConformanceCodingCostFinite(t *testing.T) {
	x := conformanceTensor()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			e, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := e.Fit(x.Clone(), conformanceOpts())
			if err != nil {
				t.Fatalf("fit: %v", err)
			}
			c, err := e.CodingCost(m, x)
			if err != nil {
				t.Fatalf("CodingCost: %v", err)
			}
			if math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
				t.Fatalf("CodingCost = %v, want finite positive", c)
			}
		})
	}
}

func TestLookupAndNames(t *testing.T) {
	names := Names()
	want := []string{"dspot", "epidemic", "funnel", "hip"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if _, err := Lookup(""); err != nil {
		t.Errorf(`Lookup("") = %v, want default engine`, err)
	}
	if _, err := Lookup(Auto); err == nil {
		t.Error("Lookup(auto) succeeded, want error (auto is AutoFit, not an engine)")
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) succeeded, want error")
	}
}
