package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"dspot/internal/epidemic"
	"dspot/internal/mdl"
	"dspot/internal/numcheck"
	"dspot/internal/tensor"
)

func init() { Register(epidemicEngine{}) }

// EpidemicModel holds one compartmental fit (best kind by MDL among
// SI/SIR/SIRS/SKIPS) per keyword, over the global sequences.
type EpidemicModel struct {
	keywords  []string
	locations []string
	ticks     int
	params    []epidemic.Params
}

func (m *EpidemicModel) EngineName() string  { return "epidemic" }
func (m *EpidemicModel) Keywords() []string  { return m.keywords }
func (m *EpidemicModel) Locations() []string { return m.locations }
func (m *EpidemicModel) Ticks() int          { return m.ticks }

// Params returns the fitted compartmental parameters for keyword i.
func (m *EpidemicModel) Params(i int) epidemic.Params { return m.params[i] }

func (m *EpidemicModel) Validate() error {
	if m.ticks <= 0 {
		return fmt.Errorf("epidemic model: non-positive ticks %d", m.ticks)
	}
	if len(m.params) != len(m.keywords) || len(m.keywords) == 0 {
		return fmt.Errorf("epidemic model: %d keywords, %d parameter sets",
			len(m.keywords), len(m.params))
	}
	for i, p := range m.params {
		if p.Kind < epidemic.SI || p.Kind > epidemic.SKIPS {
			return fmt.Errorf("epidemic model: keyword %d has unknown kind %d", i, p.Kind)
		}
		for _, v := range []float64{p.N, p.Beta, p.Delta, p.Gamma, p.I0, p.Amp, p.Phase} {
			if err := numcheck.Finite(fmt.Sprintf("epidemic params[%d]", i), v); err != nil {
				return err
			}
		}
	}
	return nil
}

// epidemicKindDim is the fitted float count per kind (the N/β/δ/γ/i0 subset
// plus SKIPS' amp and phase) — the description length charged by MDL.
func epidemicKindDim(k epidemic.Kind) int {
	switch k {
	case epidemic.SI:
		return 3
	case epidemic.SIR:
		return 4
	case epidemic.SIRS:
		return 5
	default: // SKIPS
		return 7
	}
}

// epidemicDescCost prices one keyword's parameters: a kind selector over the
// four family members, the kind's floats, and the seasonal period integer
// for SKIPS.
func epidemicDescCost(p epidemic.Params, n int) float64 {
	c := mdl.IntCost(4) + mdl.FloatsCost(epidemicKindDim(p.Kind))
	if p.Kind == epidemic.SKIPS {
		c += mdl.IntCost(n)
	}
	return c
}

type epidemicEngine struct{}

func (epidemicEngine) Name() string { return "epidemic" }

// Fit fits each keyword's global sequence with every family member and keeps
// the kind with the lowest MDL total (description + Gaussian residual cost),
// so simple dynamics are not over-parameterised into SKIPS.
func (epidemicEngine) Fit(x *tensor.Tensor, opts FitOptions) (Model, error) {
	if err := validateInput(x, &opts); err != nil {
		return nil, err
	}
	ctx := ctxOf(opts)
	n := x.N()
	params := make([]epidemic.Params, x.D())
	for i := 0; i < x.D(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("engine: epidemic fit cancelled: %w", err)
		}
		seq := x.Global(i)
		bestCost := math.Inf(1)
		var firstErr error
		for _, kind := range []epidemic.Kind{epidemic.SI, epidemic.SIR, epidemic.SIRS, epidemic.SKIPS} {
			p, err := epidemic.FitCtx(ctx, kind, seq)
			if err != nil {
				if ctx.Err() != nil {
					return nil, fmt.Errorf("engine: epidemic fit cancelled: %w", ctx.Err())
				}
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			c := epidemicDescCost(p, n) + gaussianResidualCost(seq, p.Simulate(n))
			if c < bestCost {
				bestCost, params[i] = c, p
			}
		}
		if math.IsInf(bestCost, 1) {
			return nil, fmt.Errorf("engine: epidemic fit of keyword %q: %w",
				x.Keywords[i], firstErr)
		}
	}
	return &EpidemicModel{
		keywords:  append([]string(nil), x.Keywords...),
		locations: append([]string(nil), x.Locations...),
		ticks:     n,
		params:    params,
	}, nil
}

func (epidemicEngine) Simulate(m Model, keyword string, n int) ([]float64, error) {
	em, err := asEpidemic(m)
	if err != nil {
		return nil, err
	}
	i, err := keywordIndex(m, keyword)
	if err != nil {
		return nil, err
	}
	return em.params[i].Simulate(n), nil
}

// Forecast continues the compartmental dynamics past the training window.
func (epidemicEngine) Forecast(m Model, keyword string, horizon int) ([]float64, error) {
	em, err := asEpidemic(m)
	if err != nil {
		return nil, err
	}
	i, err := keywordIndex(m, keyword)
	if err != nil {
		return nil, err
	}
	return em.params[i].Simulate(em.ticks + horizon)[em.ticks:], nil
}

func (epidemicEngine) CodingCost(m Model, x *tensor.Tensor) (float64, error) {
	em, err := asEpidemic(m)
	if err != nil {
		return 0, err
	}
	n := x.N()
	cost := header(x.D(), n)
	for i := 0; i < x.D() && i < len(em.params); i++ {
		cost += epidemicDescCost(em.params[i], n)
		cost += gaussianResidualCost(x.Global(i), em.params[i].Simulate(n))
	}
	return cost, nil
}

// epidemicModelJSON is the persistence wire form.
type epidemicModelJSON struct {
	Engine    string            `json:"engine"`
	Keywords  []string          `json:"keywords"`
	Locations []string          `json:"locations"`
	Ticks     int               `json:"ticks"`
	Params    []epidemic.Params `json:"params"`
}

func (epidemicEngine) EncodeModel(w io.Writer, m Model) error {
	em, err := asEpidemic(m)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(epidemicModelJSON{
		Engine: "epidemic", Keywords: em.keywords, Locations: em.locations,
		Ticks: em.ticks, Params: em.params,
	})
}

func (epidemicEngine) DecodeModel(r io.Reader) (Model, error) {
	var wire epidemicModelJSON
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("engine: decoding epidemic model: %w", err)
	}
	if wire.Engine != "" && wire.Engine != "epidemic" {
		return nil, fmt.Errorf("engine: epidemic decoder got engine %q", wire.Engine)
	}
	m := &EpidemicModel{
		keywords: wire.Keywords, locations: wire.Locations,
		ticks: wire.Ticks, params: wire.Params,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func asEpidemic(m Model) (*EpidemicModel, error) {
	em, ok := m.(*EpidemicModel)
	if !ok {
		return nil, errors.New("engine: epidemic engine got a " + m.EngineName() + " model")
	}
	return em, nil
}
