// Package engine is the pluggable model-engine subsystem: one serving-facing
// interface over every dynamical-model family the repo can fit, with a
// process-wide named registry. Δ-SPOT (internal/core), the epidemic and
// FUNNEL baselines, and the HIP Hawkes-intensity engine all register here;
// the HTTP service, the model registry and the CLIs select engines by name
// and never import a family package directly.
//
// The comparison currency is MDL: every engine's CodingCost prices the same
// global sequences under the same universal header (description cost of its
// parameters plus the Gaussian coding cost of the residuals), so costs are
// comparable across families and `auto` (AutoFit) can pick the family that
// explains a tensor most cheaply — the paper's model-selection argument,
// exposed as an API.
//
// Adding a new engine is: implement ModelEngine (context-aware Fit with
// numcheck input validation, deterministic for fixed inputs), implement
// Model for its fitted artefact, call Register in an init(), and run the
// conformance harness (conformance_test.go) against it.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"dspot/internal/core"
	"dspot/internal/mdl"
	"dspot/internal/tensor"
)

// Default is the engine used when no name is given: the Δ-SPOT core.
const Default = "dspot"

// Auto is the reserved pseudo-engine name: fit every registered engine and
// keep the one with the lowest MDL coding cost (see AutoFit).
const Auto = "auto"

// Model is one fitted artefact, whatever family produced it. Values are
// shared after Fit (the registry hands the same Model to every request), so
// implementations must be read-only after construction.
type Model interface {
	// EngineName names the engine that produced (and can decode) this model.
	EngineName() string
	Keywords() []string
	Locations() []string
	Ticks() int
	// Validate checks internal consistency; the registry refuses to persist
	// models that fail it.
	Validate() error
}

// FitOptions is the engine-independent fit configuration. Engines ignore
// knobs that do not apply to their family (e.g. Promotion outside HIP,
// DisableCycles outside Δ-SPOT).
type FitOptions struct {
	// Context cancels the fit cooperatively; every engine stops within about
	// one LM iteration and returns an error wrapping context.Canceled or
	// context.DeadlineExceeded.
	Context context.Context
	// Workers bounds fitting concurrency inside one engine (0 = default).
	Workers int
	// GlobalOnly skips per-location structure where the family has any
	// (Δ-SPOT local matrices, FUNNEL location scales).
	GlobalOnly bool
	// DisableGrowth / DisableShocks / DisableCycles gate Δ-SPOT components.
	DisableGrowth bool
	DisableShocks bool
	DisableCycles bool
	// MaxShocks bounds shock discovery for the shock-capable engines
	// (0 = engine default).
	MaxShocks int
	// Prevalidated promises the tensor already passed Validate, so engines
	// skip the O(d·l·n) numcheck scan.
	Prevalidated bool
	// Promotion is the exogenous promotion series s(t) for HIP, one value
	// per tick (nil = constant 1). Exogenous input, never a fitted quantity.
	Promotion []float64
	// Progress receives fit-stage events from engines that emit them
	// (Δ-SPOT); zero-cost when nil.
	Progress ProgressFunc
}

// Fit-observability types are shared with the Δ-SPOT core: the service layer
// consumes them without importing internal/core.
type (
	// FitEvent is one fit-progress observation at a stage boundary.
	FitEvent = core.FitEvent
	// ProgressFunc receives fit-progress events; safe for concurrent use.
	ProgressFunc = core.ProgressFunc
	// FitTrace aggregates FitEvents into a FitReport.
	FitTrace = core.FitTrace
	// FitReport aggregates one fit run's trace events.
	FitReport = core.FitReport
	// PredictedEvent is one forecast external event (cyclic shocks only).
	PredictedEvent = core.PredictedEvent
	// Anomaly is one flagged tick from anomaly scoring.
	Anomaly = core.Anomaly
)

// Re-exported fit stages (see core.Stage) for Progress consumers.
const (
	StageBase      = core.StageBase
	StageGrowth    = core.StageGrowth
	StageShock     = core.StageShock
	StageKeyword   = core.StageKeyword
	StageGlobal    = core.StageGlobal
	StageLocal     = core.StageLocal
	StageLocalCell = core.StageLocalCell
	StagePanic     = core.StagePanic
)

// NewFitTrace returns an empty fit-trace collector.
func NewFitTrace() *FitTrace { return core.NewFitTrace() }

// ModelEngine is one registered model family. Implementations must be
// stateless (safe for concurrent use) and deterministic: the same tensor and
// options produce the same model, byte-for-byte under EncodeModel.
type ModelEngine interface {
	// Name is the registry key ("dspot", "hip", ...).
	Name() string
	// Fit fits the family to a tensor. Unless opts.Prevalidated, non-finite
	// or negative input is rejected with a typed numcheck error before any
	// fitting work.
	Fit(x *tensor.Tensor, opts FitOptions) (Model, error)
	// Simulate returns the fitted global curve for one keyword ("" = first)
	// over n ticks.
	Simulate(m Model, keyword string, n int) ([]float64, error)
	// Forecast extends one keyword's global curve horizon ticks past the
	// training window.
	Forecast(m Model, keyword string, horizon int) ([]float64, error)
	// CodingCost is the global-level MDL total of the model against the
	// tensor it was fitted to: universal header + parameter description +
	// Gaussian coding of the global residuals. Comparable across engines.
	CodingCost(m Model, x *tensor.Tensor) (float64, error)
	// EncodeModel / DecodeModel round-trip the model as JSON. The encoding
	// is the persistence format, so it must stay stable across versions.
	EncodeModel(w io.Writer, m Model) error
	DecodeModel(r io.Reader) (Model, error)
}

// Optional capabilities, asserted against Model values by the service layer.
type (
	// EventLister exposes detected external events (shock-capable engines).
	EventLister interface {
		Events() []Event
	}
	// EventForecaster predicts future event occurrences within a horizon.
	EventForecaster interface {
		PredictedEvents(keyword string, horizon int) ([]PredictedEvent, error)
	}
	// AnomalyScorer scores an observed series against the fitted model.
	AnomalyScorer interface {
		Anomalies(keyword string, series []float64, threshold float64) ([]Anomaly, error)
	}
)

// Event is one detected external event in engine-neutral form.
type Event struct {
	Keyword  string    `json:"keyword"`
	Period   int       `json:"period"`
	Start    int       `json:"start"`
	Width    int       `json:"width"`
	Strength []float64 `json:"strength"`
	Cyclic   bool      `json:"cyclic"`
}

var (
	regMu   sync.RWMutex
	engines = make(map[string]ModelEngine)
)

// Register installs an engine under its Name. It is meant for init()-time
// self-registration and panics on a duplicate, empty or reserved name —
// those are programmer errors, not runtime conditions.
func Register(e ModelEngine) {
	name := e.Name()
	if name == "" || name == Auto {
		panic(fmt.Sprintf("engine: invalid engine name %q", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := engines[name]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of %q", name))
	}
	engines[name] = e
}

// Lookup resolves an engine by name ("" selects Default). Auto is not an
// engine — use AutoFit — so Lookup rejects it alongside unknown names.
func Lookup(name string) (ModelEngine, error) {
	if name == "" {
		name = Default
	}
	regMu.RLock()
	e, ok := engines[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (registered: %v)", name, Names())
	}
	return e, nil
}

// Names lists the registered engines, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(engines))
	for name := range engines {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// Decode decodes a model with the named engine ("" = Default).
func Decode(name string, r io.Reader) (Model, error) {
	e, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return e.DecodeModel(r)
}

// validateInput enforces the numcheck boundary once per fit: after a
// successful scan opts is marked Prevalidated so inner layers skip it.
func validateInput(x *tensor.Tensor, opts *FitOptions) error {
	if x == nil || x.D() == 0 || x.N() == 0 {
		return errors.New("engine: empty tensor")
	}
	if opts.Prevalidated {
		return nil
	}
	if err := x.Validate(); err != nil {
		return err
	}
	opts.Prevalidated = true
	return nil
}

// ctxOf returns the fit context, never nil.
func ctxOf(opts FitOptions) context.Context {
	if opts.Context != nil {
		return opts.Context
	}
	return context.Background()
}

// keywordIndex resolves a keyword name against a model ("" = first).
func keywordIndex(m Model, name string) (int, error) {
	kws := m.Keywords()
	if name == "" {
		if len(kws) == 0 {
			return 0, errors.New("engine: model has no keywords")
		}
		return 0, nil
	}
	for i, kw := range kws {
		if kw == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("engine: unknown keyword %q", name)
}

// gaussianResidualCost is the Gaussian coding cost of obs−est with missing
// observations skipped — the shared Cost_C term of every engine's
// CodingCost.
func gaussianResidualCost(obs, est []float64) float64 {
	n := len(obs)
	if len(est) < n {
		n = len(est)
	}
	r := make([]float64, n)
	for t := 0; t < n; t++ {
		if tensor.IsMissing(obs[t]) {
			r[t] = tensor.Missing
			continue
		}
		r[t] = obs[t] - est[t]
	}
	return mdl.GaussianCost(r)
}

// header is the shared universal MDL header log*(d)+log*(n) every engine's
// CodingCost starts from.
func header(d, n int) float64 {
	return mdl.LogStar(d) + mdl.LogStar(n)
}
