package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dspot/internal/hip"
	"dspot/internal/mdl"
	"dspot/internal/numcheck"
	"dspot/internal/tensor"
)

func init() { Register(hipEngine{}) }

// HIPModel holds one Hawkes-intensity fit per keyword over the global
// sequences, plus the promotion series the fit conditioned on (exogenous
// input — stored so simulation and forecasting replay the same drive, but
// never priced by MDL).
type HIPModel struct {
	keywords  []string
	locations []string
	ticks     int
	params    []hip.Params
	promotion []float64
}

func (m *HIPModel) EngineName() string  { return "hip" }
func (m *HIPModel) Keywords() []string  { return m.keywords }
func (m *HIPModel) Locations() []string { return m.locations }
func (m *HIPModel) Ticks() int          { return m.ticks }

// Params returns the fitted HIP parameters for keyword i.
func (m *HIPModel) Params(i int) hip.Params { return m.params[i] }

func (m *HIPModel) Validate() error {
	if m.ticks <= 0 {
		return fmt.Errorf("hip model: non-positive ticks %d", m.ticks)
	}
	if len(m.params) != len(m.keywords) || len(m.keywords) == 0 {
		return fmt.Errorf("hip model: %d keywords, %d parameter sets",
			len(m.keywords), len(m.params))
	}
	for i, p := range m.params {
		for _, v := range []float64{p.Mu, p.C, p.Theta, p.Cutoff} {
			if err := numcheck.Value(fmt.Sprintf("hip params[%d]", i), v); err != nil {
				return err
			}
		}
	}
	if m.promotion != nil {
		if err := numcheck.StrictSequence("hip promotion", m.promotion); err != nil {
			return err
		}
	}
	return nil
}

type hipEngine struct{}

func (hipEngine) Name() string { return "hip" }

func (hipEngine) Fit(x *tensor.Tensor, opts FitOptions) (Model, error) {
	if err := validateInput(x, &opts); err != nil {
		return nil, err
	}
	ctx := ctxOf(opts)
	params := make([]hip.Params, x.D())
	for i := 0; i < x.D(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("engine: hip fit cancelled: %w", err)
		}
		p, err := hip.Fit(x.Global(i), hip.Options{
			Context:   ctx,
			Promotion: opts.Promotion,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: hip fit of keyword %q: %w", x.Keywords[i], err)
		}
		params[i] = p
	}
	var promo []float64
	if opts.Promotion != nil {
		promo = append([]float64(nil), opts.Promotion...)
	}
	return &HIPModel{
		keywords:  append([]string(nil), x.Keywords...),
		locations: append([]string(nil), x.Locations...),
		ticks:     x.N(),
		params:    params,
		promotion: promo,
	}, nil
}

func (hipEngine) Simulate(m Model, keyword string, n int) ([]float64, error) {
	hm, err := asHIP(m)
	if err != nil {
		return nil, err
	}
	i, err := keywordIndex(m, keyword)
	if err != nil {
		return nil, err
	}
	return hm.params[i].Simulate(n, hm.promotion), nil
}

func (hipEngine) Forecast(m Model, keyword string, horizon int) ([]float64, error) {
	hm, err := asHIP(m)
	if err != nil {
		return nil, err
	}
	i, err := keywordIndex(m, keyword)
	if err != nil {
		return nil, err
	}
	return hm.params[i].Forecast(hm.ticks, horizon, hm.promotion), nil
}

func (hipEngine) CodingCost(m Model, x *tensor.Tensor) (float64, error) {
	hm, err := asHIP(m)
	if err != nil {
		return 0, err
	}
	n := x.N()
	cost := header(x.D(), n)
	for i := 0; i < x.D() && i < len(hm.params); i++ {
		cost += mdl.FloatsCost(hip.ParamCount)
		cost += gaussianResidualCost(x.Global(i), hm.params[i].Simulate(n, hm.promotion))
	}
	return cost, nil
}

// hipModelJSON is the persistence wire form.
type hipModelJSON struct {
	Engine    string       `json:"engine"`
	Keywords  []string     `json:"keywords"`
	Locations []string     `json:"locations"`
	Ticks     int          `json:"ticks"`
	Params    []hip.Params `json:"params"`
	Promotion []float64    `json:"promotion,omitempty"`
}

func (hipEngine) EncodeModel(w io.Writer, m Model) error {
	hm, err := asHIP(m)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(hipModelJSON{
		Engine: "hip", Keywords: hm.keywords, Locations: hm.locations,
		Ticks: hm.ticks, Params: hm.params, Promotion: hm.promotion,
	})
}

func (hipEngine) DecodeModel(r io.Reader) (Model, error) {
	var wire hipModelJSON
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("engine: decoding hip model: %w", err)
	}
	if wire.Engine != "" && wire.Engine != "hip" {
		return nil, fmt.Errorf("engine: hip decoder got engine %q", wire.Engine)
	}
	m := &HIPModel{
		keywords: wire.Keywords, locations: wire.Locations,
		ticks: wire.Ticks, params: wire.Params, promotion: wire.Promotion,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func asHIP(m Model) (*HIPModel, error) {
	hm, ok := m.(*HIPModel)
	if !ok {
		return nil, errors.New("engine: hip engine got a " + m.EngineName() + " model")
	}
	return hm, nil
}
