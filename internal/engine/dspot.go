package engine

import (
	"fmt"
	"io"

	"dspot/internal/core"
	"dspot/internal/dataset"
	"dspot/internal/tensor"
)

func init() { Register(dspotEngine{}) }

// DspotModel adapts a fitted *core.Model to the engine Model interface. The
// wrapper is a pure view: fitting, simulation, forecasting and persistence
// all delegate to the core untouched, so numerics through the engine path
// are bit-identical to direct core calls (pinned by TestFitSequenceGolden).
type DspotModel struct{ M *core.Model }

// NewDspotModel wraps a core model for engine-typed callers (the registry,
// streams, tests).
func NewDspotModel(m *core.Model) *DspotModel { return &DspotModel{M: m} }

func (d *DspotModel) EngineName() string  { return Default }
func (d *DspotModel) Keywords() []string  { return d.M.Keywords }
func (d *DspotModel) Locations() []string { return d.M.Locations }
func (d *DspotModel) Ticks() int          { return d.M.Ticks }
func (d *DspotModel) Validate() error     { return d.M.Validate() }

// Events lists the fitted shock tensor in engine-neutral form.
func (d *DspotModel) Events() []Event {
	out := make([]Event, 0, len(d.M.Shocks))
	for _, sh := range d.M.Shocks {
		out = append(out, Event{
			Keyword: d.M.Keywords[sh.Keyword], Period: sh.Period,
			Start: sh.Start, Width: sh.Width,
			Strength: sh.Strength, Cyclic: sh.Period > 0,
		})
	}
	return out
}

// PredictedEvents forecasts future occurrences of the keyword's cyclic
// shocks within the horizon.
func (d *DspotModel) PredictedEvents(keyword string, horizon int) ([]PredictedEvent, error) {
	i, err := keywordIndex(d, keyword)
	if err != nil {
		return nil, err
	}
	return d.M.PredictedEvents(i, horizon), nil
}

// Anomalies scores an observed series against the fitted global curve.
func (d *DspotModel) Anomalies(keyword string, series []float64, threshold float64) ([]Anomaly, error) {
	i, err := keywordIndex(d, keyword)
	if err != nil {
		return nil, err
	}
	return d.M.AnomaliesGlobal(i, series, threshold), nil
}

// dspotEngine is the Δ-SPOT family behind the engine interface.
type dspotEngine struct{}

func (dspotEngine) Name() string { return Default }

func (dspotEngine) Fit(x *tensor.Tensor, opts FitOptions) (Model, error) {
	if err := validateInput(x, &opts); err != nil {
		return nil, err
	}
	copts := core.FitOptions{
		Workers:       opts.Workers,
		Prevalidated:  true,
		DisableGrowth: opts.DisableGrowth,
		DisableShocks: opts.DisableShocks,
		DisableCycles: opts.DisableCycles,
		MaxShocks:     opts.MaxShocks,
		Context:       opts.Context,
		Progress:      opts.Progress,
	}
	var m *core.Model
	var err error
	if opts.GlobalOnly {
		m, err = core.FitGlobal(x, copts)
	} else {
		m, err = core.Fit(x, copts)
	}
	if err != nil {
		return nil, err
	}
	return &DspotModel{M: m}, nil
}

func (dspotEngine) Simulate(m Model, keyword string, n int) ([]float64, error) {
	dm, err := asDspot(m)
	if err != nil {
		return nil, err
	}
	i, err := keywordIndex(m, keyword)
	if err != nil {
		return nil, err
	}
	return dm.M.SimulateGlobal(i, n), nil
}

func (dspotEngine) Forecast(m Model, keyword string, horizon int) ([]float64, error) {
	dm, err := asDspot(m)
	if err != nil {
		return nil, err
	}
	i, err := keywordIndex(m, keyword)
	if err != nil {
		return nil, err
	}
	return dm.M.ForecastGlobal(i, horizon), nil
}

func (dspotEngine) CodingCost(m Model, x *tensor.Tensor) (float64, error) {
	dm, err := asDspot(m)
	if err != nil {
		return 0, err
	}
	return dm.M.GlobalCost(x.GlobalAll()), nil
}

// EncodeModel / DecodeModel reuse the dataset wire format, so models
// persisted before the engine subsystem existed decode unchanged.
func (dspotEngine) EncodeModel(w io.Writer, m Model) error {
	dm, err := asDspot(m)
	if err != nil {
		return err
	}
	return dataset.WriteModel(w, dm.M)
}

func (dspotEngine) DecodeModel(r io.Reader) (Model, error) {
	m, err := dataset.ReadModel(r)
	if err != nil {
		return nil, err
	}
	return &DspotModel{M: m}, nil
}

func asDspot(m Model) (*DspotModel, error) {
	dm, ok := m.(*DspotModel)
	if !ok {
		return nil, fmt.Errorf("engine: dspot engine got a %q model", m.EngineName())
	}
	return dm, nil
}
