package engine

import (
	"math"
	"testing"

	"dspot/internal/datagen"
)

// TestAutoSelectsGeneratingFamily is the acceptance test for engine=auto:
// on a world scripted by one family's generative process, the MDL race picks
// that family, and the cost table carries a finite entry per surviving
// engine with the winner at the minimum.
func TestAutoSelectsGeneratingFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("fits every engine on three scenario worlds; skipped in -short")
	}
	cfg := datagen.Config{Locations: 3, Ticks: datagen.ScenarioTicks, Seed: 7, Noise: 0.02}

	hawkes, promo := datagen.HawkesScenario(cfg)
	cases := []struct {
		name      string
		truth     *datagen.Truth
		promotion []float64
		want      string
	}{
		{name: "trend", truth: datagen.TrendScenario(cfg), want: "dspot"},
		{name: "epidemic", truth: datagen.EpidemicScenario(cfg), want: "epidemic"},
		{name: "hawkes", truth: hawkes, promotion: promo, want: "hip"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, costs, err := AutoFit(tc.truth.Tensor, FitOptions{
				Workers:   1,
				MaxShocks: 3,
				Promotion: tc.promotion,
			})
			if err != nil {
				t.Fatalf("AutoFit: %v", err)
			}
			if got := m.EngineName(); got != tc.want {
				t.Errorf("auto selected %q, want %q (costs: %v)", got, tc.want, costs)
			}
			if len(costs) < 2 {
				t.Fatalf("cost table has %d entries, want at least 2: %v", len(costs), costs)
			}
			winner, ok := costs[tc.want]
			if !ok {
				t.Fatalf("cost table missing the generating family: %v", costs)
			}
			for name, c := range costs {
				if math.IsNaN(c) || math.IsInf(c, 0) {
					t.Errorf("cost[%s] = %v, want finite", name, c)
				}
				if name != tc.want && c < winner {
					t.Errorf("cost[%s] = %.1f beats winner %.1f; table %v", name, c, winner, costs)
				}
			}
		})
	}
}

// TestAutoFitAllEnginesFail pins the error path: an input no engine accepts
// reports the joined per-engine failures rather than a nil model.
func TestAutoFitAllEnginesFail(t *testing.T) {
	m, costs, err := AutoFit(nil, FitOptions{})
	if err == nil || m != nil || costs != nil {
		t.Fatalf("AutoFit(nil) = %v, %v, %v; want error", m, costs, err)
	}
}
