package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dspot/internal/funnel"
	"dspot/internal/mdl"
	"dspot/internal/numcheck"
	"dspot/internal/tensor"
)

func init() { Register(funnelEngine{}) }

// FunnelModel holds one FUNNEL fit per keyword over the global sequences,
// plus optional per-location scales (the family's spatial treatment) when
// the fit was not GlobalOnly.
type FunnelModel struct {
	keywords  []string
	locations []string
	ticks     int
	params    []funnel.Params
	// localScales[i][j] rescales keyword i's global curve to location j
	// (nil for global-only fits).
	localScales [][]float64
}

func (m *FunnelModel) EngineName() string  { return "funnel" }
func (m *FunnelModel) Keywords() []string  { return m.keywords }
func (m *FunnelModel) Locations() []string { return m.locations }
func (m *FunnelModel) Ticks() int          { return m.ticks }

// Params returns the fitted FUNNEL parameters for keyword i.
func (m *FunnelModel) Params(i int) funnel.Params { return m.params[i] }

func (m *FunnelModel) Validate() error {
	if m.ticks <= 0 {
		return fmt.Errorf("funnel model: non-positive ticks %d", m.ticks)
	}
	if len(m.params) != len(m.keywords) || len(m.keywords) == 0 {
		return fmt.Errorf("funnel model: %d keywords, %d parameter sets",
			len(m.keywords), len(m.params))
	}
	if m.localScales != nil && len(m.localScales) != len(m.keywords) {
		return fmt.Errorf("funnel model: %d keywords, %d local-scale rows",
			len(m.keywords), len(m.localScales))
	}
	for i, p := range m.params {
		for _, v := range []float64{p.N, p.Beta, p.Delta, p.Gamma, p.I0, p.Amp, p.Phase} {
			if err := numcheck.Finite(fmt.Sprintf("funnel params[%d]", i), v); err != nil {
				return err
			}
		}
		for _, s := range p.Shocks {
			if s.Start < 0 || s.Width < 1 {
				return fmt.Errorf("funnel model: keyword %d has shock at %d width %d",
					i, s.Start, s.Width)
			}
		}
	}
	return nil
}

// Events lists the one-shot shocks (FUNNEL has no cyclic events).
func (m *FunnelModel) Events() []Event {
	var out []Event
	for i, p := range m.params {
		for _, s := range p.Shocks {
			out = append(out, Event{
				Keyword: m.keywords[i], Start: s.Start, Width: s.Width,
				Strength: []float64{s.Strength},
			})
		}
	}
	return out
}

// funnelDescCost prices one keyword's parameters: the base floats, a
// seasonality indicator bit (amp/phase floats plus the period integer when
// present), and the shock list.
func funnelDescCost(p funnel.Params, n int) float64 {
	c := mdl.FloatsCost(5) + 1 // base params + "has seasonality?" bit
	if p.Period > 0 {
		c += mdl.FloatsCost(2) + mdl.IntCost(n)
	}
	c += mdl.LogStar(len(p.Shocks))
	c += float64(len(p.Shocks)) * (2*mdl.IntCost(n) + mdl.FloatCost)
	return c
}

type funnelEngine struct{}

func (funnelEngine) Name() string { return "funnel" }

func (funnelEngine) Fit(x *tensor.Tensor, opts FitOptions) (Model, error) {
	if err := validateInput(x, &opts); err != nil {
		return nil, err
	}
	ctx := ctxOf(opts)
	n := x.N()
	params := make([]funnel.Params, x.D())
	var localScales [][]float64
	if !opts.GlobalOnly {
		localScales = make([][]float64, x.D())
	}
	for i := 0; i < x.D(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("engine: funnel fit cancelled: %w", err)
		}
		p, err := funnel.Fit(x.Global(i), funnel.Options{
			MaxShocks: opts.MaxShocks,
			Context:   ctx,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: funnel fit of keyword %q: %w", x.Keywords[i], err)
		}
		params[i] = p
		if localScales != nil {
			locals := make([][]float64, x.L())
			for j := 0; j < x.L(); j++ {
				locals[j] = x.Local(i, j)
			}
			localScales[i] = funnel.FitLocal(p, locals)
		}
	}
	return &FunnelModel{
		keywords:    append([]string(nil), x.Keywords...),
		locations:   append([]string(nil), x.Locations...),
		ticks:       n,
		params:      params,
		localScales: localScales,
	}, nil
}

func (funnelEngine) Simulate(m Model, keyword string, n int) ([]float64, error) {
	fm, err := asFunnel(m)
	if err != nil {
		return nil, err
	}
	i, err := keywordIndex(m, keyword)
	if err != nil {
		return nil, err
	}
	return fm.params[i].Simulate(n), nil
}

// Forecast continues the seasonal dynamics; one-shot shocks lie inside the
// training window and do not recur.
func (funnelEngine) Forecast(m Model, keyword string, horizon int) ([]float64, error) {
	fm, err := asFunnel(m)
	if err != nil {
		return nil, err
	}
	i, err := keywordIndex(m, keyword)
	if err != nil {
		return nil, err
	}
	return fm.params[i].Simulate(fm.ticks + horizon)[fm.ticks:], nil
}

func (funnelEngine) CodingCost(m Model, x *tensor.Tensor) (float64, error) {
	fm, err := asFunnel(m)
	if err != nil {
		return 0, err
	}
	n := x.N()
	cost := header(x.D(), n)
	for i := 0; i < x.D() && i < len(fm.params); i++ {
		cost += funnelDescCost(fm.params[i], n)
		cost += gaussianResidualCost(x.Global(i), fm.params[i].Simulate(n))
	}
	return cost, nil
}

// funnelModelJSON is the persistence wire form.
type funnelModelJSON struct {
	Engine      string          `json:"engine"`
	Keywords    []string        `json:"keywords"`
	Locations   []string        `json:"locations"`
	Ticks       int             `json:"ticks"`
	Params      []funnel.Params `json:"params"`
	LocalScales [][]float64     `json:"local_scales,omitempty"`
}

func (funnelEngine) EncodeModel(w io.Writer, m Model) error {
	fm, err := asFunnel(m)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(funnelModelJSON{
		Engine: "funnel", Keywords: fm.keywords, Locations: fm.locations,
		Ticks: fm.ticks, Params: fm.params, LocalScales: fm.localScales,
	})
}

func (funnelEngine) DecodeModel(r io.Reader) (Model, error) {
	var wire funnelModelJSON
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("engine: decoding funnel model: %w", err)
	}
	if wire.Engine != "" && wire.Engine != "funnel" {
		return nil, fmt.Errorf("engine: funnel decoder got engine %q", wire.Engine)
	}
	m := &FunnelModel{
		keywords: wire.Keywords, locations: wire.Locations,
		ticks: wire.Ticks, params: wire.Params, localScales: wire.LocalScales,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func asFunnel(m Model) (*FunnelModel, error) {
	fm, ok := m.(*FunnelModel)
	if !ok {
		return nil, errors.New("engine: funnel engine got a " + m.EngineName() + " model")
	}
	return fm, nil
}
