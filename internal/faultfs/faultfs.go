// Package faultfs abstracts the filesystem operations the registry's
// persistence layer performs, so tests can inject faults — a write that
// fails halfway, a rename that never happens, a disk that fills up — at any
// chosen point in the write-temp-fsync-rename protocol. Durability claims
// ("after any crash the registry reloads to a consistent manifest") are
// only as good as the fault schedule they survived; this package is that
// schedule.
//
// Production code uses OS, a thin passthrough to the os package plus the
// directory-fsync that os.Rename alone does not provide. Chaos tests wrap
// it in an Injector.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"syscall"
)

// Operation names used by Injector rules and counters. Each names one
// FS/File method; OpAny matches every operation.
const (
	OpCreate  = "create"  // FS.CreateTemp
	OpWrite   = "write"   // File.Write
	OpSync    = "sync"    // File.Sync
	OpClose   = "close"   // File.Close
	OpRename  = "rename"  // FS.Rename
	OpRemove  = "remove"  // FS.Remove
	OpRead    = "read"    // FS.ReadFile
	OpReadDir = "readdir" // FS.ReadDir
	OpStat    = "stat"    // FS.Stat
	OpMkdir   = "mkdir"   // FS.MkdirAll
	OpSyncDir = "syncdir" // FS.SyncDir
	OpAny     = "*"
)

// ErrInjected marks a fault produced by an Injector rule. Chaos tests
// assert errors.Is(err, ErrInjected) to distinguish scheduled faults from
// real ones.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrNoSpace is the injected disk-full error (wraps both ErrInjected and
// syscall.ENOSPC so production code that special-cases ENOSPC sees it).
var ErrNoSpace = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)

// File is the writable handle returned by CreateTemp. Sync is part of the
// interface because durability of a rename-based protocol depends on the
// data hitting the platter before the rename publishes it.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the slice of filesystem the registry needs.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir fsyncs a directory, making a preceding rename in it durable.
	SyncDir(dir string) error
}

// OS is the production FS: the os package plus directory fsync.
type OS struct{}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error             { return os.Remove(name) }
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error) {
	return os.ReadDir(name)
}
func (OS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Some platforms (and some filesystems) refuse to fsync a directory;
	// that is a property of the platform, not a torn write, so EINVAL is
	// tolerated the way database WAL implementations tolerate it.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil && !errors.Is(serr, syscall.EINVAL) {
		return serr
	}
	return cerr
}

// rule is one scheduled fault: the nth future occurrence of op fails with
// err. A short-write rule writes half the buffer before failing.
type rule struct {
	op    string
	nth   int // occurrences of op remaining before this rule fires
	err   error
	short bool
}

// Injector wraps an FS and fails chosen operations on schedule. Safe for
// concurrent use. Zero rules = transparent passthrough (with counting).
type Injector struct {
	inner FS

	mu     sync.Mutex
	counts map[string]int
	rules  []*rule
}

// NewInjector wraps inner (nil selects OS{}).
func NewInjector(inner FS) *Injector {
	if inner == nil {
		inner = OS{}
	}
	return &Injector{inner: inner, counts: make(map[string]int)}
}

// FailNth schedules the nth future occurrence of op (1 = the next one) to
// fail with err (nil selects ErrInjected). op may be OpAny.
func (in *Injector) FailNth(op string, nth int, err error) {
	if err == nil {
		err = ErrInjected
	}
	if nth < 1 {
		nth = 1
	}
	in.mu.Lock()
	in.rules = append(in.rules, &rule{op: op, nth: nth, err: err})
	in.mu.Unlock()
}

// ShortWriteNth schedules the nth future Write to write only half its
// buffer and then fail with ErrNoSpace — the classic torn write.
func (in *Injector) ShortWriteNth(nth int) {
	if nth < 1 {
		nth = 1
	}
	in.mu.Lock()
	in.rules = append(in.rules, &rule{op: OpWrite, nth: nth, err: ErrNoSpace, short: true})
	in.mu.Unlock()
}

// Count reports how many times op has been attempted (faulted or not).
func (in *Injector) Count(op string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// Reset drops all pending rules and zeroes the counters.
func (in *Injector) Reset() {
	in.mu.Lock()
	in.rules = nil
	in.counts = make(map[string]int)
	in.mu.Unlock()
}

// check counts one occurrence of op and returns the fault scheduled for it,
// if any. Every matching rule is decremented for this occurrence — never
// only the one that fires, or two schedules on the same op would drift
// apart by one occurrence each time one fired — and the first rule whose
// count is exhausted is consumed and returned. A second rule exhausted on
// the same occurrence fires on the next one.
func (in *Injector) check(op string) (error, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[op]++
	fired := -1
	for i, r := range in.rules {
		if r.op != op && r.op != OpAny {
			continue
		}
		r.nth--
		if r.nth <= 0 && fired < 0 {
			fired = i
		}
	}
	if fired < 0 {
		return nil, false
	}
	r := in.rules[fired]
	in.rules = append(in.rules[:fired], in.rules[fired+1:]...)
	return r.err, r.short
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := in.check(OpCreate); err != nil {
		return nil, err
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{inner: f, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err, _ := in.check(OpRename); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err, _ := in.check(OpRemove); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if err, _ := in.check(OpRead); err != nil {
		return nil, err
	}
	return in.inner.ReadFile(name)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if err, _ := in.check(OpReadDir); err != nil {
		return nil, err
	}
	return in.inner.ReadDir(name)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	if err, _ := in.check(OpStat); err != nil {
		return nil, err
	}
	return in.inner.Stat(name)
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := in.check(OpMkdir); err != nil {
		return err
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) SyncDir(dir string) error {
	if err, _ := in.check(OpSyncDir); err != nil {
		return err
	}
	return in.inner.SyncDir(dir)
}

// injFile threads Write/Sync/Close through the injector's schedule.
type injFile struct {
	inner File
	in    *Injector
}

func (f *injFile) Write(p []byte) (int, error) {
	err, short := f.in.check(OpWrite)
	if err != nil {
		if short && len(p) > 0 {
			n, werr := f.inner.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *injFile) Sync() error {
	if err, _ := f.in.check(OpSync); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *injFile) Close() error {
	if err, _ := f.in.check(OpClose); err != nil {
		f.inner.Close() // release the handle even when reporting a fault
		return err
	}
	return f.inner.Close()
}

func (f *injFile) Name() string { return f.inner.Name() }
