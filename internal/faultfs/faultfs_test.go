package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	f, err := fsys.CreateTemp(dir, "x-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "final")
	if err := fsys.Rename(f.Name(), dst); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(dst)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	des, err := fsys.ReadDir(dir)
	if err != nil || len(des) != 1 {
		t.Fatalf("ReadDir = %v, %v", des, err)
	}
	if _, err := fsys.Stat(dst); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(dst); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorFailNth(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{})
	in.FailNth(OpWrite, 2, nil)

	f, err := in.CreateTemp(dir, "x-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1 should pass: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 = %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("write 3 should pass (rule consumed): %v", err)
	}
	if got := in.Count(OpWrite); got != 3 {
		t.Fatalf("Count(write) = %d, want 3", got)
	}
}

func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{})
	in.ShortWriteNth(1)
	f, err := in.CreateTemp(dir, "x-*")
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("0123456789"))
	f.Close()
	if !errors.Is(werr, ErrNoSpace) || !errors.Is(werr, ErrInjected) || !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("short write err = %v, want ErrNoSpace (ENOSPC, injected)", werr)
	}
	if n != 5 {
		t.Fatalf("short write wrote %d bytes, want 5", n)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil || string(data) != "01234" {
		t.Fatalf("on-disk torn content = %q, %v", data, err)
	}
}

func TestInjectorOpAny(t *testing.T) {
	in := NewInjector(OS{})
	in.FailNth(OpAny, 3, nil)
	if err := in.MkdirAll(filepath.Join(t.TempDir(), "a"), 0o755); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if _, err := in.Stat("/"); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if _, err := in.ReadFile("/does-not-matter"); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 3 = %v, want ErrInjected", err)
	}
}

func TestInjectorReset(t *testing.T) {
	in := NewInjector(nil)
	in.FailNth(OpRename, 1, nil)
	in.Reset()
	a := filepath.Join(t.TempDir(), "a")
	if err := os.WriteFile(a, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := in.Rename(a, a+"2"); err != nil {
		t.Fatalf("Rename after Reset = %v, want nil", err)
	}
	if in.Count(OpRename) != 1 {
		t.Fatalf("Count after Reset = %d, want 1", in.Count(OpRename))
	}
}

// TestInjectorConcurrentSchedulesDoNotDrift pins the counting semantics
// when two rules watch the same op: every occurrence decrements every
// matching rule, so "fail the 2nd read" and "fail the 3rd read" fire on
// the 2nd and 3rd reads — not on the 2nd and 4th, which is what happens
// if a firing rule swallows the occurrence before later rules see it.
func TestInjectorConcurrentSchedulesDoNotDrift(t *testing.T) {
	in := NewInjector(nil)
	in.FailNth(OpRead, 2, nil)
	in.FailNth(OpRead, 3, nil)

	tmp := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(tmp, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := in.ReadFile(tmp); err != nil {
		t.Fatalf("read 1 should pass: %v", err)
	}
	if _, err := in.ReadFile(tmp); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2 = %v, want ErrInjected (first rule)", err)
	}
	if _, err := in.ReadFile(tmp); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 3 = %v, want ErrInjected (second rule, no drift)", err)
	}
	if _, err := in.ReadFile(tmp); err != nil {
		t.Fatalf("read 4 should pass (both rules consumed): %v", err)
	}
}
