package epidemic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dspot/internal/stats"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{SI: "SI", SIR: "SIR", SIRS: "SIRS", SKIPS: "SKIPS", Kind(99): "unknown"}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestSimulateSIMonotoneInfectives(t *testing.T) {
	p := Params{Kind: SI, N: 100, Beta: 0.8, I0: 0.01}
	out := p.Simulate(200)
	for t1 := 1; t1 < len(out); t1++ {
		if out[t1] < out[t1-1]-1e-9 {
			t.Fatalf("SI infectives decreased at %d: %g -> %g", t1, out[t1-1], out[t1])
		}
	}
	if out[len(out)-1] < 99 {
		t.Fatalf("SI should saturate near N, got %g", out[len(out)-1])
	}
}

func TestSimulateSIRPeaksAndDies(t *testing.T) {
	p := Params{Kind: SIR, N: 1000, Beta: 1.2, Delta: 0.3, I0: 0.001}
	out := p.Simulate(300)
	peak := stats.Max(out)
	if peak < 10 {
		t.Fatalf("SIR never took off: peak %g", peak)
	}
	if out[len(out)-1] > peak*0.01 {
		t.Fatalf("SIR should die out: final %g vs peak %g", out[len(out)-1], peak)
	}
}

func TestSimulateSIRSEndemicEquilibrium(t *testing.T) {
	p := Params{Kind: SIRS, N: 1000, Beta: 1.0, Delta: 0.3, Gamma: 0.05, I0: 0.01}
	out := p.Simulate(2000)
	// SIRS with immunity loss reaches a non-zero endemic level.
	tail := out[1800:]
	if stats.Mean(tail) < 1 {
		t.Fatalf("SIRS endemic level too low: %g", stats.Mean(tail))
	}
	if stats.Std(tail) > stats.Mean(tail)*0.05 {
		t.Fatalf("SIRS tail not settled: std %g mean %g", stats.Std(tail), stats.Mean(tail))
	}
}

func TestSimulateSKIPSOscillates(t *testing.T) {
	p := Params{Kind: SKIPS, N: 1000, Beta: 1.0, Delta: 0.3, Gamma: 0.05,
		I0: 0.01, Period: 52, Amp: 0.6}
	out := p.Simulate(1040)
	tail := out[520:]
	// Seasonal forcing keeps oscillation alive in the long run.
	if stats.Std(tail) < stats.Mean(tail)*0.05 {
		t.Fatalf("SKIPS tail flat: std %g mean %g", stats.Std(tail), stats.Mean(tail))
	}
	acf := stats.Autocorrelation(tail, 52)
	if acf < 0.3 {
		t.Fatalf("SKIPS tail not periodic at forcing period: acf %g", acf)
	}
}

func TestSimulateFractionsBounded(t *testing.T) {
	// Even absurd parameters must produce finite non-negative output.
	p := Params{Kind: SKIPS, N: 10, Beta: 50, Delta: 10, Gamma: 10, I0: 1,
		Period: 3, Amp: 5, Phase: 1}
	for _, v := range p.Simulate(100) {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 10+1e-9 {
			t.Fatalf("unbounded output %g", v)
		}
	}
}

func TestBetaSeasonalNonNegative(t *testing.T) {
	p := Params{Kind: SKIPS, Beta: 1, Period: 10, Amp: 2}
	for tt := 0; tt < 20; tt++ {
		if p.beta(tt) < 0 {
			t.Fatalf("negative forced beta at %d", tt)
		}
	}
	// Non-SKIPS kinds ignore forcing.
	q := Params{Kind: SIRS, Beta: 1, Period: 10, Amp: 2}
	if q.beta(5) != 1 {
		t.Fatalf("SIRS beta forced: %g", q.beta(5))
	}
}

func TestFitRecoversSIR(t *testing.T) {
	truth := Params{Kind: SIR, N: 500, Beta: 1.1, Delta: 0.25, I0: 0.005}
	obs := truth.Simulate(150)
	got, err := Fit(SIR, obs)
	if err != nil {
		t.Fatal(err)
	}
	fit := got.Simulate(150)
	rmse := stats.RMSE(obs, fit)
	if rmse > stats.Max(obs)*0.05 {
		t.Fatalf("SIR self-fit RMSE %g (peak %g), params %+v", rmse, stats.Max(obs), got)
	}
}

func TestFitRecoversSIRS(t *testing.T) {
	truth := Params{Kind: SIRS, N: 300, Beta: 0.9, Delta: 0.3, Gamma: 0.04, I0: 0.01}
	obs := truth.Simulate(200)
	got, err := Fit(SIRS, obs)
	if err != nil {
		t.Fatal(err)
	}
	rmse := stats.RMSE(obs, got.Simulate(200))
	if rmse > stats.Max(obs)*0.05 {
		t.Fatalf("SIRS self-fit RMSE %g, params %+v", rmse, got)
	}
}

func TestFitSKIPSFindsPeriodicity(t *testing.T) {
	truth := Params{Kind: SKIPS, N: 400, Beta: 1.0, Delta: 0.3, Gamma: 0.06,
		I0: 0.01, Period: 52, Amp: 0.5, Phase: 0.3}
	obs := truth.Simulate(312)
	got, err := Fit(SKIPS, obs)
	if err != nil {
		t.Fatal(err)
	}
	rmse := stats.RMSE(obs, got.Simulate(312))
	// SKIPS has a rugged landscape; demand a clearly better-than-flat fit.
	if rmse > stats.Std(obs) {
		t.Fatalf("SKIPS fit no better than mean: RMSE %g vs std %g", rmse, stats.Std(obs))
	}
}

func TestFitTooShort(t *testing.T) {
	if _, err := Fit(SIR, []float64{1, 2}); err == nil {
		t.Fatal("short sequence accepted")
	}
	nan := math.NaN()
	if _, err := Fit(SIR, []float64{nan, nan, nan, nan, nan}); err == nil {
		t.Fatal("all-missing sequence accepted")
	}
}

func TestFitSkipsMissing(t *testing.T) {
	truth := Params{Kind: SIR, N: 500, Beta: 1.1, Delta: 0.25, I0: 0.005}
	obs := truth.Simulate(150)
	for i := 10; i < 150; i += 13 {
		obs[i] = math.NaN()
	}
	got, err := Fit(SIR, obs)
	if err != nil {
		t.Fatal(err)
	}
	rmse := stats.RMSE(truth.Simulate(150), got.Simulate(150))
	if rmse > truth.N*0.05 {
		t.Fatalf("fit with missing data RMSE %g", rmse)
	}
}

func TestFitAndSimulateLength(t *testing.T) {
	obs := (&Params{Kind: SIR, N: 100, Beta: 1, Delta: 0.3, I0: 0.01}).Simulate(80)
	curve, p, err := FitAndSimulate(SIR, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 80 {
		t.Fatalf("curve length %d", len(curve))
	}
	if p.Kind != SIR {
		t.Fatalf("kind %v", p.Kind)
	}
}

// Property: simulation output is always within [0, N] and finite for random
// valid parameters.
func TestSimulateBoundedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			Kind:   Kind(rng.Intn(4)),
			N:      rng.Float64() * 1000,
			Beta:   rng.Float64() * 3,
			Delta:  rng.Float64(),
			Gamma:  rng.Float64(),
			I0:     rng.Float64(),
			Period: 2 + rng.Intn(60),
			Amp:    rng.Float64(),
			Phase:  rng.Float64()*2*math.Pi - math.Pi,
		}
		for _, v := range p.Simulate(120) {
			if math.IsNaN(v) || v < -1e-9 || v > p.N+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: simulation is deterministic.
func TestSimulateDeterministicQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{Kind: SIRS, N: 100, Beta: rng.Float64() * 2,
			Delta: rng.Float64(), Gamma: rng.Float64(), I0: rng.Float64() * 0.1}
		a, b := p.Simulate(50), p.Simulate(50)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
