package epidemic_test

import (
	"fmt"

	"dspot/internal/epidemic"
)

// Simulate a classical SIR outbreak: it peaks and dies out.
func ExampleParams_Simulate() {
	p := epidemic.Params{Kind: epidemic.SIR, N: 1000, Beta: 1.2, Delta: 0.3, I0: 0.001}
	out := p.Simulate(300)
	peak, at := 0.0, 0
	for t, v := range out {
		if v > peak {
			peak, at = v, t
		}
	}
	fmt.Printf("peaked=%v diedOut=%v peakAfterStart=%v\n",
		peak > 100, out[299] < peak/100, at > 0)
	// Output:
	// peaked=true diedOut=true peakAfterStart=true
}

// Fit recovers a simulated SIRS epidemic.
func ExampleFit() {
	truth := epidemic.Params{Kind: epidemic.SIRS, N: 300, Beta: 0.9,
		Delta: 0.3, Gamma: 0.04, I0: 0.01}
	obs := truth.Simulate(200)
	fitted, err := epidemic.Fit(epidemic.SIRS, obs)
	if err != nil {
		panic(err)
	}
	fmt.Println("kind:", fitted.Kind)
	// Output:
	// kind: SIRS
}
