// Package epidemic implements the classical compartmental epidemic models
// that the Δ-SPOT paper compares against (Fig. 9): SI, SIR, SIRS, and SKIPS
// (a seasonally-forced SIRS after Stone, Olinky & Huppert 2007, the paper's
// reference [19]). The models are discrete-time difference systems simulated
// on normalised populations (s+i+r = 1) and scaled by a potential population
// N, matching the numerical form used by the Δ-SPOT core.
package epidemic

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dspot/internal/lm"
	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// Kind selects a member of the model family.
type Kind int

const (
	// SI has no recovery: susceptible → infective only.
	SI Kind = iota
	// SIR adds recovery without loss of immunity.
	SIR
	// SIRS adds immunity loss (recovered → susceptible).
	SIRS
	// SKIPS is SIRS with sinusoidal seasonal forcing of the contact rate.
	SKIPS
)

// String returns the conventional model name.
func (k Kind) String() string {
	switch k {
	case SI:
		return "SI"
	case SIR:
		return "SIR"
	case SIRS:
		return "SIRS"
	case SKIPS:
		return "SKIPS"
	default:
		return "unknown"
	}
}

// Params holds the parameters of one fitted model.
type Params struct {
	Kind  Kind
	N     float64 // potential population (output scale)
	Beta  float64 // contact rate
	Delta float64 // recovery rate (0 for SI)
	Gamma float64 // immunity-loss rate (0 for SI/SIR)
	I0    float64 // initial infective fraction

	// Seasonal forcing (SKIPS only): beta(t) = Beta·(1 + Amp·cos(2πt/Period + Phase)).
	Period int
	Amp    float64
	Phase  float64
}

// beta returns the (possibly seasonally forced) contact rate at tick t.
func (p *Params) beta(t int) float64 {
	if p.Kind != SKIPS || p.Period <= 0 {
		return p.Beta
	}
	b := p.Beta * (1 + p.Amp*math.Cos(2*math.Pi*float64(t)/float64(p.Period)+p.Phase))
	if b < 0 {
		return 0
	}
	return b
}

// Simulate runs the model for n ticks and returns the infective counts
// N·i(t). Fractions are clamped to [0,1] each step so that any parameter
// vector yields finite, physically meaningful output (important because the
// fitter explores the parameter space freely).
func (p *Params) Simulate(n int) []float64 {
	out := make([]float64, n)
	i := clamp01(p.I0)
	s := 1 - i
	r := 0.0
	for t := 0; t < n; t++ {
		out[t] = p.N * i
		infect := p.beta(t) * s * i
		var recover, relapse float64
		if p.Kind != SI {
			recover = p.Delta * i
		}
		if p.Kind == SIRS || p.Kind == SKIPS {
			relapse = p.Gamma * r
		}
		s = clamp01(s - infect + relapse)
		i = clamp01(i + infect - recover)
		r = clamp01(r + recover - relapse)
		// Renormalise drift introduced by clamping.
		tot := s + i + r
		if tot > 0 {
			s, i, r = s/tot, i/tot, r/tot
		}
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Fit fits a model of the given kind to seq by Levenberg–Marquardt on
// normalised data, trying a small deterministic set of starting points and
// returning the best. Missing (NaN) observations are skipped.
func Fit(kind Kind, seq []float64) (Params, error) {
	return FitCtx(context.Background(), kind, seq)
}

// FitCtx is Fit under a cancellation context: once ctx ends, the LM
// iterations and remaining starting points stop cooperatively and the error
// wraps context.Canceled or context.DeadlineExceeded.
func FitCtx(ctx context.Context, kind Kind, seq []float64) (Params, error) {
	if tensor.ObservedCount(seq) < 4 {
		return Params{}, errors.New("epidemic: sequence too short to fit")
	}
	norm, scale := tensor.Normalize(seq)
	n := len(norm)

	best := Params{Kind: kind}
	bestSSE := math.Inf(1)

	fitOne := func(period int) {
		// Parameter layout depends on kind; all in normalised space.
		var p0, lo, hi []float64
		switch kind {
		case SI:
			p0 = []float64{1, 0.5, 0.01} // N, beta, i0
			lo = []float64{1e-6, 1e-6, 1e-9}
			hi = []float64{10, 5, 1}
		case SIR:
			p0 = []float64{1, 0.5, 0.3, 0.01} // N, beta, delta, i0
			lo = []float64{1e-6, 1e-6, 1e-6, 1e-9}
			hi = []float64{10, 5, 2, 1}
		case SIRS:
			p0 = []float64{1, 0.5, 0.4, 0.3, 0.01} // N, beta, delta, gamma, i0
			lo = []float64{1e-6, 1e-6, 1e-6, 1e-6, 1e-9}
			hi = []float64{10, 5, 2, 2, 1}
		case SKIPS:
			p0 = []float64{1, 0.5, 0.4, 0.3, 0.01, 0.5, 0} // + amp, phase
			lo = []float64{1e-6, 1e-6, 1e-6, 1e-6, 1e-9, 0, -math.Pi}
			hi = []float64{10, 5, 2, 2, 1, 1, math.Pi}
		}
		build := func(v []float64) Params {
			p := Params{Kind: kind, N: v[0], Beta: v[1]}
			switch kind {
			case SI:
				p.I0 = v[2]
			case SIR:
				p.Delta, p.I0 = v[2], v[3]
			case SIRS:
				p.Delta, p.Gamma, p.I0 = v[2], v[3], v[4]
			case SKIPS:
				p.Delta, p.Gamma, p.I0 = v[2], v[3], v[4]
				p.Amp, p.Phase, p.Period = v[5], v[6], period
			}
			return p
		}
		resid := func(v []float64) []float64 {
			cand := build(v)
			sim := cand.Simulate(n)
			r := make([]float64, n)
			for t := range r {
				if tensor.IsMissing(norm[t]) {
					r[t] = math.NaN()
					continue
				}
				r[t] = sim[t] - norm[t]
			}
			return r
		}
		// Deterministic multi-start over contact-rate scales.
		for _, betaStart := range []float64{0.2, 0.8, 2.0} {
			if ctx.Err() != nil {
				return
			}
			start := append([]float64(nil), p0...)
			start[1] = betaStart
			res, err := lm.Fit(resid, start, lm.Options{MaxIter: 120, Lower: lo, Upper: hi, Ctx: ctx})
			if err != nil {
				continue
			}
			if res.SSE < bestSSE {
				bestSSE = res.SSE
				best = build(res.Params)
			}
		}
	}

	if kind == SKIPS {
		// Candidate periods from the data's autocorrelation plus common
		// calendar periods at weekly/daily resolution.
		cands := stats.DominantPeriods(norm, 3, 4, 0.1)
		cands = append(cands, 52, 26, 104, 7, 30, 365)
		seen := map[int]bool{}
		for _, p := range cands {
			if p < 2 || p > n/2 || seen[p] {
				continue
			}
			seen[p] = true
			fitOne(p)
		}
		if len(seen) == 0 {
			fitOne(n / 2)
		}
	} else {
		fitOne(0)
	}

	if err := ctx.Err(); err != nil {
		return Params{}, fmt.Errorf("epidemic: fit cancelled: %w", err)
	}
	if math.IsInf(bestSSE, 1) {
		return Params{}, errors.New("epidemic: fit failed for all starting points")
	}
	best.N *= scale // undo normalisation
	return best, nil
}

// FitAndSimulate is a convenience helper returning the fitted curve for seq.
func FitAndSimulate(kind Kind, seq []float64) ([]float64, Params, error) {
	p, err := Fit(kind, seq)
	if err != nil {
		return nil, Params{}, err
	}
	return p.Simulate(len(seq)), p, nil
}
